#include "spc/formats/csr_du.hpp"

#include <algorithm>
#include <cstring>

#include "spc/support/varint.hpp"

namespace spc {

namespace {

// Appends `delta` to the ctl stream in the width of `cls`, little-endian.
void append_delta(aligned_vector<std::uint8_t>& ctl, std::uint64_t delta,
                  DeltaClass cls) {
  const std::uint32_t width = delta_class_bytes(cls);
  for (std::uint32_t b = 0; b < width; ++b) {
    ctl.push_back(static_cast<std::uint8_t>(delta >> (8 * b)));
  }
}

std::uint64_t read_delta(const std::uint8_t*& p, DeltaClass cls) {
  const std::uint32_t width = delta_class_bytes(cls);
  std::uint64_t v = 0;
  for (std::uint32_t b = 0; b < width; ++b) {
    v |= static_cast<std::uint64_t>(*p++) << (8 * b);
  }
  return v;
}

// varint_encode into an aligned byte vector (varint.hpp works on
// std::vector<uint8_t>; keep one local shim to avoid converting).
void append_varint(aligned_vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

// One segment of a row chosen by the encoder: elems [first, first+len) of
// the row's non-zeros, stored with class `cls` (RLE runs carry a single
// stride instead of ucis).
struct Segment {
  usize_t first = 0;
  std::uint32_t len = 0;
  DeltaClass cls = DeltaClass::kU8;
  bool rle = false;
  std::uint64_t stride = 0;
};

}  // namespace

CsrDu CsrDu::from_triplets(const Triplets& t, const CsrDuOptions& opts) {
  SPC_CHECK_MSG(t.is_sorted_unique(),
                "CSR-DU construction requires sorted/combined triplets");
  SPC_CHECK_MSG(opts.max_unit >= 1 && opts.max_unit <= 255,
                "max_unit must be in [1, 255]");
  SPC_CHECK_MSG(opts.split_threshold >= 1, "split_threshold must be >= 1");
  SPC_CHECK_MSG(opts.rle_min_run >= 2, "rle_min_run must be >= 2");

  CsrDu m;
  m.nrows_ = t.nrows();
  m.ncols_ = t.ncols();
  m.opts_ = opts;
  m.values_.reserve(t.nnz());
  // Heuristic reserve: header ~3B/unit + ~1.2B/delta keeps growth rare.
  m.ctl_.reserve(t.nnz() + t.nrows() * 3);

  const auto& entries = t.entries();
  std::vector<std::uint64_t> deltas;   // deltas of the current row
  std::vector<Segment> segments;       // segmentation of the current row
  std::int64_t prev_row = -1;          // last row that produced units

  usize_t i = 0;
  while (i < entries.size()) {
    // Gather one row.
    const index_t row = entries[i].row;
    const usize_t row_start = i;
    deltas.clear();
    index_t prev_col = 0;
    while (i < entries.size() && entries[i].row == row) {
      // First element's "delta" is its absolute column (the NR ujmp).
      deltas.push_back(i == row_start
                           ? static_cast<std::uint64_t>(entries[i].col)
                           : static_cast<std::uint64_t>(entries[i].col -
                                                        prev_col));
      prev_col = entries[i].col;
      m.values_.push_back(entries[i].val);
      ++i;
    }
    const usize_t row_len = deltas.size();

    // Segment the row greedily. A segment's class covers deltas[first+1..]
    // — the first delta becomes the unit's varint ujmp and has no class.
    segments.clear();
    {
      usize_t s = 0;
      while (s < row_len) {
        // Constant-stride run detection (applies from the *second*
        // element of a candidate unit: the first is the ujmp).
        if (opts.enable_rle && s + 1 < row_len) {
          const std::uint64_t stride = deltas[s + 1];
          usize_t run = s + 1;
          while (run < row_len && deltas[run] == stride &&
                 run - s < opts.max_unit) {
            ++run;
          }
          if (run - s >= opts.rle_min_run) {
            segments.push_back(Segment{s,
                                       static_cast<std::uint32_t>(run - s),
                                       DeltaClass::kU8, true, stride});
            s = run;
            continue;
          }
        }
        // Plain unit: grow while the class stays economical.
        usize_t e = s + 1;
        DeltaClass cls = DeltaClass::kU8;
        while (e < row_len && e - s < opts.max_unit) {
          const DeltaClass c = delta_class_for(deltas[e]);
          if (c > cls && e - s >= opts.split_threshold) {
            break;  // widening would tax the existing elements; split
          }
          cls = std::max(cls, c);
          // Leave a long enough constant-delta run to the RLE detector.
          if (opts.enable_rle) {
            usize_t run = e;
            while (run < row_len && deltas[run] == deltas[e] &&
                   run - e < opts.max_unit) {
              ++run;
            }
            if (run - e >= opts.rle_min_run) {
              ++e;  // current delta joins this unit as its last element
              break;
            }
          }
          ++e;
        }
        segments.push_back(Segment{s, static_cast<std::uint32_t>(e - s),
                                   cls, false});
        s = e;
      }
    }

    // Emit the row's units.
    const std::uint64_t rskip =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(row) -
                                   prev_row - 1);
    bool first_of_row = true;
    for (const Segment& seg : segments) {
      std::uint8_t flags =
          static_cast<std::uint8_t>(static_cast<std::uint8_t>(seg.cls) &
                                    kDuClassMask);
      if (seg.rle) {
        flags |= kDuRle;
      }
      if (first_of_row) {
        flags |= kDuNewRow;
        if (rskip > 0) {
          flags |= kDuRJmp;
        }
      }
      m.ctl_.push_back(flags);
      m.ctl_.push_back(static_cast<std::uint8_t>(seg.len));
      if (first_of_row && rskip > 0) {
        append_varint(m.ctl_, rskip);
      }
      append_varint(m.ctl_, deltas[seg.first]);
      if (seg.rle) {
        append_varint(m.ctl_, seg.stride);
      } else {
        for (std::uint32_t k = 1; k < seg.len; ++k) {
          append_delta(m.ctl_, deltas[seg.first + k], seg.cls);
        }
      }
      ++m.unit_count_;
      if (seg.rle) {
        ++m.rle_units_;
        // Class totals partition all units: RLE units count under their
        // stride's class (matching unit_histogram()).
        ++m.units_per_class_[static_cast<std::uint8_t>(
            delta_class_for(seg.stride))];
      } else {
        ++m.units_per_class_[static_cast<std::uint8_t>(seg.cls)];
      }
      first_of_row = false;
    }
    prev_row = row;
  }
  m.nnz_ = m.values_.size();
  return m;
}

CsrDu CsrDu::from_raw(index_t nrows, index_t ncols,
                      const CsrDuOptions& opts,
                      aligned_vector<std::uint8_t> ctl,
                      aligned_vector<value_t> values) {
  CsrDu m;
  m.nrows_ = nrows;
  m.ncols_ = ncols;
  m.opts_ = opts;
  m.ctl_ = std::move(ctl);
  m.values_ = std::move(values);

  // Full validation walk: bounds, counts and per-class statistics.
  const std::uint8_t* p = m.ctl_.data();
  const std::uint8_t* const end = m.ctl_.data() + m.ctl_.size();
  std::int64_t row = -1;
  std::uint64_t col = 0;
  usize_t elems = 0;
  while (p < end) {
    if (end - p < 2) {
      throw ParseError("csr-du: truncated unit header");
    }
    const std::uint8_t flags = *p++;
    const std::uint32_t usize = *p++;
    if (usize == 0) {
      throw ParseError("csr-du: zero-length unit");
    }
    const bool rle = (flags & kDuRle) != 0;
    const auto cls = static_cast<DeltaClass>(flags & kDuClassMask);
    if (flags & kDuNewRow) {
      std::uint64_t rskip = 0;
      if (flags & kDuRJmp) {
        rskip = varint_decode_checked(p, end);
      }
      row += 1 + static_cast<std::int64_t>(rskip);
      col = 0;
      if (row >= static_cast<std::int64_t>(nrows)) {
        throw ParseError("csr-du: row index out of bounds");
      }
    } else if (row < 0) {
      throw ParseError("csr-du: stream does not start with a new row");
    }
    const std::uint64_t ujmp = varint_decode_checked(p, end);
    // Non-NR continuation units sit after a previous element: their jump
    // lands on a strictly later column only if ujmp >= 1; NR units may
    // start at column 0.
    col += ujmp;
    ++elems;
    std::uint64_t rle_stride = 0;
    if (rle) {
      const std::uint64_t stride = varint_decode_checked(p, end);
      rle_stride = stride;
      col += stride * (usize - 1);
      elems += usize - 1;
    } else {
      const std::size_t width = delta_class_bytes(cls);
      if (static_cast<std::size_t>(end - p) <
          width * static_cast<std::size_t>(usize - 1)) {
        throw ParseError("csr-du: truncated ucis array");
      }
      for (std::uint32_t k = 1; k < usize; ++k) {
        std::uint64_t d = 0;
        for (std::size_t b = 0; b < width; ++b) {
          d |= static_cast<std::uint64_t>(*p++) << (8 * b);
        }
        col += d;
        ++elems;
      }
    }
    if (col >= ncols) {
      throw ParseError("csr-du: column index out of bounds");
    }
    ++m.unit_count_;
    if (rle) {
      ++m.rle_units_;
      // Class totals partition all units (see unit_histogram()).
      ++m.units_per_class_[static_cast<std::uint8_t>(
          delta_class_for(rle_stride))];
    } else {
      ++m.units_per_class_[static_cast<std::uint8_t>(cls)];
    }
  }
  if (!m.values_.empty() && elems != m.values_.size()) {
    throw ParseError("csr-du: ctl element count does not match values");
  }
  m.nnz_ = elems;
  return m;
}

CsrDu::Slice CsrDu::full() const {
  Slice s;
  s.ctl = ctl_.data();
  s.ctl_end = ctl_.data() + ctl_.size();
  s.values = values_.empty() ? nullptr : values_.data();
  s.val_offset = 0;
  s.row_begin = 0;
  s.row_end = nrows_;
  s.row_state = -1;
  s.nnz = nnz_;
  return s;
}

CsrDu::Slice CsrDu::slice(index_t row_begin, index_t row_end) const {
  SPC_CHECK_MSG(row_begin <= row_end && row_end <= nrows_,
                "slice row range out of bounds");
  Slice s;
  s.row_begin = row_begin;
  s.row_end = row_end;

  const std::uint8_t* p = ctl_.data();
  const std::uint8_t* const end = ctl_.data() + ctl_.size();
  std::int64_t row = -1;
  usize_t val_off = 0;

  const std::uint8_t* slice_ctl = end;
  const std::uint8_t* slice_ctl_end = end;
  usize_t slice_val_off = val_off;
  std::int64_t slice_row_state = row;
  usize_t slice_nnz = 0;
  bool in_slice = false;

  while (p < end) {
    const std::uint8_t* const unit_start = p;
    const std::int64_t row_before = row;
    const std::uint8_t flags = *p++;
    const std::uint32_t usize = *p++;
    if (flags & kDuNewRow) {
      std::uint64_t rskip = 0;
      if (flags & kDuRJmp) {
        rskip = varint_decode(p);
      }
      row += 1 + static_cast<std::int64_t>(rskip);
    }
    varint_decode(p);  // ujmp
    if (flags & kDuRle) {
      varint_decode(p);  // stride
    } else {
      const auto cls = static_cast<DeltaClass>(flags & kDuClassMask);
      p += static_cast<std::size_t>(usize - 1) * delta_class_bytes(cls);
    }

    if (!in_slice && row >= static_cast<std::int64_t>(row_begin)) {
      if (row >= static_cast<std::int64_t>(row_end)) {
        // No unit falls inside the range (all its rows are empty): the
        // slice is the zero-length span at this boundary, so consecutive
        // slices still tile the ctl stream.
        slice_ctl = unit_start;
        slice_ctl_end = unit_start;
        slice_val_off = val_off;
        slice_row_state = row_before;
        break;
      }
      in_slice = true;
      slice_ctl = unit_start;
      slice_val_off = val_off;
      slice_row_state = row_before;
    }
    if (in_slice) {
      if (row >= static_cast<std::int64_t>(row_end)) {
        slice_ctl_end = unit_start;
        in_slice = false;
        slice_nnz = val_off - slice_val_off;
        break;
      }
    }
    val_off += usize;
  }
  if (in_slice) {
    slice_ctl_end = p;
    slice_nnz = val_off - slice_val_off;
  }

  s.ctl = slice_ctl;
  s.ctl_end = slice_ctl_end;
  s.values = values_.empty() ? nullptr : values_.data() + slice_val_off;
  s.val_offset = slice_val_off;
  s.row_state = slice_row_state;
  s.nnz = slice_nnz;
  return s;
}

std::vector<CsrDu::Slice> CsrDu::slices(
    const std::vector<index_t>& bounds) const {
  const std::size_t k = bounds.empty() ? 0 : bounds.size() - 1;
  std::vector<Slice> out(k);
  const std::uint8_t* const end = ctl_.data() + ctl_.size();
  for (std::size_t i = 0; i < k; ++i) {
    SPC_CHECK_MSG(bounds[i] <= bounds[i + 1] && bounds[i + 1] <= nrows_,
                  "slices bounds must be non-decreasing and in range");
    Slice& s = out[i];
    s.row_begin = bounds[i];
    s.row_end = bounds[i + 1];
    // Defaults for ranges past the last unit — what slice() leaves when
    // its scan ends without anchoring.
    s.ctl = end;
    s.ctl_end = end;
    s.val_offset = 0;
    s.row_state = -1;
  }

  // One pass over the units, anchoring each range exactly where the
  // per-range slice() scan would. Ranges are consecutive and units
  // arrive in row order, so at most one range is open at a time.
  const std::uint8_t* p = ctl_.data();
  std::int64_t row = -1;
  usize_t val_off = 0;
  std::size_t next = 0;  ///< first range whose start is not yet anchored
  std::size_t open = k;  ///< index of the open range (k = none)

  while (p < end && (open < k || next < k)) {
    const std::uint8_t* const unit_start = p;
    const std::int64_t row_before = row;
    const std::uint8_t flags = *p++;
    const std::uint32_t usize = *p++;
    if (flags & kDuNewRow) {
      std::uint64_t rskip = 0;
      if (flags & kDuRJmp) {
        rskip = varint_decode(p);
      }
      row += 1 + static_cast<std::int64_t>(rskip);
    }
    varint_decode(p);  // ujmp
    if (flags & kDuRle) {
      varint_decode(p);  // stride
    } else {
      const auto cls = static_cast<DeltaClass>(flags & kDuClassMask);
      p += static_cast<std::size_t>(usize - 1) * delta_class_bytes(cls);
    }

    if (open < k &&
        row >= static_cast<std::int64_t>(bounds[open + 1])) {
      out[open].ctl_end = unit_start;
      out[open].nnz = val_off - out[open].val_offset;
      open = k;
    }
    while (next < k && row >= static_cast<std::int64_t>(bounds[next])) {
      Slice& s = out[next];
      if (row >= static_cast<std::int64_t>(bounds[next + 1])) {
        // No unit falls inside this range (all its rows are empty): the
        // zero-length span at this boundary, so consecutive slices
        // still tile the ctl stream.
        s.ctl = unit_start;
        s.ctl_end = unit_start;
        s.val_offset = val_off;
        s.row_state = row_before;
        ++next;
        continue;
      }
      s.ctl = unit_start;
      s.val_offset = val_off;
      s.row_state = row_before;
      open = next;
      ++next;
      break;
    }
    val_off += usize;
  }
  if (open < k) {
    out[open].ctl_end = p;
    out[open].nnz = val_off - out[open].val_offset;
  }

  for (Slice& s : out) {
    s.values = values_.empty() ? nullptr : values_.data() + s.val_offset;
  }
  return out;
}

CsrDu::UnitHistogram CsrDu::unit_histogram() const {
  UnitHistogram h;
  const std::uint8_t* p = ctl_.data();
  const std::uint8_t* const end = ctl_.data() + ctl_.size();
  while (p < end) {
    const std::uint8_t uflags = *p++;
    const std::uint32_t usize = *p++;
    if ((uflags & kDuNewRow) && (uflags & kDuRJmp)) {
      varint_decode_checked(p, end);  // rskip
    }
    varint_decode_checked(p, end);  // ujmp
    ++h.units;
    h.nnz += usize;
    if (uflags & kDuRle) {
      const std::uint64_t stride = varint_decode_checked(p, end);
      // RLE units carry their deltas implicitly (one stride for the
      // whole run); classify them by the stride's width so the class
      // totals always partition *all* units/elements — rle_*/seq_* stay
      // annotated subsets, not a disjoint bucket.
      const auto ci =
          static_cast<std::uint8_t>(delta_class_for(stride));
      ++h.units_per_class[ci];
      h.elems_per_class[ci] += usize;
      ++h.rle_units;
      h.rle_elems += usize;
      if (stride == 1) {
        ++h.seq_units;
        h.seq_elems += usize;
      }
    } else {
      const auto cls = static_cast<DeltaClass>(uflags & kDuClassMask);
      const auto ci = static_cast<std::uint8_t>(cls);
      ++h.units_per_class[ci];
      h.elems_per_class[ci] += usize;
      const usize_t payload =
          static_cast<usize_t>(usize - 1) * delta_class_bytes(cls);
      SPC_CHECK_MSG(p + payload <= end, "ctl stream truncated inside ucis");
      p += payload;
    }
  }
  return h;
}

std::vector<CsrDu::DecodedUnit> CsrDu::decode_units() const {
  std::vector<DecodedUnit> units;
  const std::uint8_t* p = ctl_.data();
  const std::uint8_t* const end = ctl_.data() + ctl_.size();
  while (p < end) {
    DecodedUnit u;
    u.uflags = *p++;
    u.usize = *p++;
    u.new_row = (u.uflags & kDuNewRow) != 0;
    u.rle = (u.uflags & kDuRle) != 0;
    u.cls = static_cast<DeltaClass>(u.uflags & kDuClassMask);
    if (u.new_row && (u.uflags & kDuRJmp)) {
      u.rskip = varint_decode_checked(p, end);
    }
    u.ujmp = varint_decode_checked(p, end);
    if (u.rle) {
      u.stride = varint_decode_checked(p, end);
      u.ucis.assign(u.usize - 1, u.stride);
    } else {
      for (std::uint32_t k = 1; k < u.usize; ++k) {
        SPC_CHECK_MSG(p + delta_class_bytes(u.cls) <= end,
                      "ctl stream truncated inside ucis");
        u.ucis.push_back(read_delta(p, u.cls));
      }
    }
    units.push_back(std::move(u));
  }
  return units;
}

CsrDu::Cursor::Cursor(const Slice& s)
    : p_(s.ctl), end_(s.ctl_end), val_index_(s.val_offset),
      row_(s.row_state) {}

bool CsrDu::Cursor::next(index_t* row, index_t* col) {
  if (remaining_ == 0) {
    if (p_ >= end_) {
      return false;
    }
    uflags_ = *p_++;
    remaining_ = *p_++;
    if (uflags_ & kDuNewRow) {
      std::uint64_t rskip = 0;
      if (uflags_ & kDuRJmp) {
        rskip = varint_decode(p_);
      }
      row_ += 1 + static_cast<std::int64_t>(rskip);
      col_ = 0;
      col_ += varint_decode(p_);
    } else {
      col_ += varint_decode(p_);
    }
    if (uflags_ & kDuRle) {
      stride_ = varint_decode(p_);
    }
  } else {
    // Continuation element within the open unit.
    if (uflags_ & kDuRle) {
      col_ += stride_;
    } else {
      const auto cls = static_cast<DeltaClass>(uflags_ & kDuClassMask);
      std::uint64_t d = 0;
      for (std::uint32_t b = 0; b < delta_class_bytes(cls); ++b) {
        d |= static_cast<std::uint64_t>(*p_++) << (8 * b);
      }
      col_ += d;
    }
  }
  --remaining_;
  ++val_index_;
  *row = static_cast<index_t>(row_);
  *col = static_cast<index_t>(col_);
  return true;
}

Triplets CsrDu::to_triplets() const {
  Triplets t(nrows_, ncols_);
  t.reserve(nnz());
  std::int64_t row = -1;
  std::uint64_t col = 0;
  usize_t v = 0;
  for (const DecodedUnit& u : decode_units()) {
    if (u.new_row) {
      row += 1 + static_cast<std::int64_t>(u.rskip);
      col = 0;
    }
    col += u.ujmp;
    t.add(static_cast<index_t>(row), static_cast<index_t>(col),
          values_[v++]);
    for (const std::uint64_t d : u.ucis) {
      col += d;
      t.add(static_cast<index_t>(row), static_cast<index_t>(col),
            values_[v++]);
    }
  }
  return t;
}

}  // namespace spc
