#include "spc/formats/bcsr.hpp"

#include <map>

namespace spc {

Bcsr Bcsr::from_triplets(const Triplets& t, index_t block_rows,
                         index_t block_cols) {
  SPC_CHECK_MSG(t.is_sorted_unique(),
                "BCSR construction requires sorted/combined triplets");
  SPC_CHECK_MSG(block_rows >= 1 && block_rows <= 8 && block_cols >= 1 &&
                    block_cols <= 8,
                "BCSR block shape must be within 1..8 x 1..8");
  Bcsr m;
  m.nrows_ = t.nrows();
  m.ncols_ = t.ncols();
  m.nnz_ = t.nnz();
  m.br_ = block_rows;
  m.bc_ = block_cols;
  m.nblock_rows_ = (t.nrows() + block_rows - 1) / block_rows;

  // Pass 1: count distinct blocks per block-row. Triplets are row-major,
  // which is not block-row-major, so collect block coordinates in a map
  // keyed by (block_row, block_col). Construction is O(nnz log nblocks);
  // format construction is not on the timed path.
  std::map<std::pair<index_t, index_t>, usize_t> block_of;
  for (const Entry& e : t.entries()) {
    block_of.emplace(std::make_pair(e.row / block_rows, e.col / block_cols),
                     0);
  }

  m.block_row_ptr_.assign(m.nblock_rows_ + 1, 0);
  for (const auto& [coord, _] : block_of) {
    ++m.block_row_ptr_[coord.first + 1];
  }
  for (index_t r = 0; r < m.nblock_rows_; ++r) {
    m.block_row_ptr_[r + 1] += m.block_row_ptr_[r];
  }

  // Assign slots; std::map iterates blocks in (brow, bcol) order, which is
  // exactly the storage order we want.
  m.block_col_.resize(block_of.size());
  {
    usize_t slot = 0;
    for (auto& [coord, idx] : block_of) {
      idx = slot;
      m.block_col_[slot] = coord.second * block_cols;
      ++slot;
    }
  }

  // Pass 2: scatter values into zero-filled blocks.
  const usize_t block_elems =
      static_cast<usize_t>(block_rows) * block_cols;
  m.values_.assign(block_of.size() * block_elems, 0.0);
  for (const Entry& e : t.entries()) {
    const auto coord =
        std::make_pair(e.row / block_rows, e.col / block_cols);
    const usize_t slot = block_of[coord];
    const index_t lr = e.row % block_rows;
    const index_t lc = e.col % block_cols;
    m.values_[slot * block_elems + static_cast<usize_t>(lr) * block_cols +
              lc] = e.val;
  }
  return m;
}

Triplets Bcsr::to_triplets() const {
  Triplets t(nrows_, ncols_);
  const usize_t block_elems = static_cast<usize_t>(br_) * bc_;
  for (index_t brow = 0; brow < nblock_rows_; ++brow) {
    for (index_t b = block_row_ptr_[brow]; b < block_row_ptr_[brow + 1];
         ++b) {
      const index_t col0 = block_col_[b];
      const index_t row0 = brow * br_;
      for (index_t lr = 0; lr < br_; ++lr) {
        for (index_t lc = 0; lc < bc_; ++lc) {
          const value_t v =
              values_[static_cast<usize_t>(b) * block_elems +
                      static_cast<usize_t>(lr) * bc_ + lc];
          const index_t row = row0 + lr;
          const index_t col = col0 + lc;
          // Fill zeros are storage artifacts, not matrix entries.
          if (v != 0.0 && row < nrows_ && col < ncols_) {
            t.add(row, col, v);
          }
        }
      }
    }
  }
  t.sort_and_combine();
  return t;
}

}  // namespace spc
