#include "spc/formats/sym_csr.hpp"

#include <map>

namespace spc {

bool SymCsr::applicable(const Triplets& t) {
  if (t.nrows() != t.ncols()) {
    return false;
  }
  // Entries are sorted/unique: mirror each off-diagonal and look it up.
  std::map<std::pair<index_t, index_t>, value_t> at;
  for (const Entry& e : t.entries()) {
    at.emplace(std::make_pair(e.row, e.col), e.val);
  }
  for (const Entry& e : t.entries()) {
    if (e.row == e.col) {
      continue;
    }
    const auto it = at.find(std::make_pair(e.col, e.row));
    if (it == at.end() || it->second != e.val) {
      return false;
    }
  }
  return true;
}

SymCsr SymCsr::from_triplets(const Triplets& t) {
  SPC_CHECK_MSG(t.is_sorted_unique(),
                "SymCsr construction requires sorted/combined triplets");
  if (!applicable(t)) {
    throw InvalidArgument("SymCsr requires a numerically symmetric matrix");
  }
  SymCsr m;
  m.n_ = t.nrows();
  m.nnz_full_ = t.nnz();
  m.diag_.assign(t.nrows(), 0.0);
  m.row_ptr_.assign(t.nrows() + 1, 0);

  usize_t lower = 0;
  for (const Entry& e : t.entries()) {
    if (e.row == e.col) {
      m.diag_[e.row] = e.val;
    } else if (e.col < e.row) {
      ++m.row_ptr_[e.row + 1];
      ++lower;
    }
  }
  for (index_t r = 0; r < t.nrows(); ++r) {
    m.row_ptr_[r + 1] += m.row_ptr_[r];
  }
  m.col_ind_.resize(lower);
  m.values_.resize(lower);
  usize_t k = 0;
  for (const Entry& e : t.entries()) {
    if (e.col < e.row) {
      m.col_ind_[k] = e.col;
      m.values_[k] = e.val;
      ++k;
    }
  }
  return m;
}

Triplets SymCsr::to_triplets() const {
  Triplets t(n_, n_);
  t.reserve(nnz_full_);
  for (index_t r = 0; r < n_; ++r) {
    if (diag_[r] != 0.0) {
      t.add(r, r, diag_[r]);
    }
    for (index_t j = row_ptr_[r]; j < row_ptr_[r + 1]; ++j) {
      t.add(r, col_ind_[j], values_[j]);
      t.add(col_ind_[j], r, values_[j]);
    }
  }
  t.sort_and_combine();
  return t;
}

}  // namespace spc
