#include "spc/formats/serialize.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

static_assert(std::endian::native == std::endian::little,
              "the SPCM container assumes a little-endian host");

namespace spc {

namespace {

constexpr char kMagic[4] = {'S', 'P', 'C', 'M'};

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) {
    throw ParseError("spcm: truncated header field");
  }
  return v;
}

std::uint64_t read_u64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) {
    throw ParseError("spcm: truncated length field");
  }
  return v;
}

template <typename T>
void write_array(std::ostream& out, const aligned_vector<T>& v) {
  write_u64(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
aligned_vector<T> read_array(std::istream& in) {
  const std::uint64_t n = read_u64(in);
  // Sanity bound + bad_alloc translation so a corrupted length field
  // reads as a parse error instead of an allocation failure.
  if (n > (1ULL << 36) / sizeof(T)) {
    throw ParseError("spcm: implausible array length");
  }
  aligned_vector<T> v;
  try {
    v.resize(n);
  } catch (const std::bad_alloc&) {
    throw ParseError("spcm: array length exceeds available memory");
  }
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  if (!in) {
    throw ParseError("spcm: truncated array payload");
  }
  return v;
}

void write_header(std::ostream& out, SpcmTag tag, index_t nrows,
                  index_t ncols) {
  out.write(kMagic, sizeof(kMagic));
  write_u32(out, kSpcmVersion);
  write_u32(out, static_cast<std::uint32_t>(tag));
  write_u32(out, nrows);
  write_u32(out, ncols);
}

SpcmTag expect_header(std::istream& in, SpcmTag want, index_t* nrows,
                      index_t* ncols) {
  const SpcmTag got = read_spcm_header(in, nrows, ncols);
  if (got != want) {
    throw ParseError("spcm: container holds a different format");
  }
  return got;
}

}  // namespace

SpcmTag read_spcm_header(std::istream& in, index_t* nrows,
                         index_t* ncols) {
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw ParseError("spcm: bad magic");
  }
  const std::uint32_t version = read_u32(in);
  if (version != kSpcmVersion) {
    throw ParseError("spcm: unsupported version");
  }
  const std::uint32_t tag = read_u32(in);
  if (tag > static_cast<std::uint32_t>(SpcmTag::kCsrDuVi)) {
    throw ParseError("spcm: unknown format tag");
  }
  *nrows = read_u32(in);
  *ncols = read_u32(in);
  return static_cast<SpcmTag>(tag);
}

void save(const Csr& m, std::ostream& out) {
  write_header(out, SpcmTag::kCsr, m.nrows(), m.ncols());
  write_array(out, m.row_ptr());
  write_array(out, m.col_ind());
  write_array(out, m.values());
}

void save(const CsrDu& m, std::ostream& out) {
  write_header(out, SpcmTag::kCsrDu, m.nrows(), m.ncols());
  const CsrDuOptions& o = m.options();
  write_u32(out, o.max_unit);
  write_u32(out, o.split_threshold);
  write_u32(out, o.enable_rle ? 1 : 0);
  write_u32(out, o.rle_min_run);
  write_array(out, m.ctl());
  write_array(out, m.values());
}

void save(const CsrVi& m, std::ostream& out) {
  write_header(out, SpcmTag::kCsrVi, m.nrows(), m.ncols());
  write_u32(out, static_cast<std::uint32_t>(m.width()));
  write_array(out, m.row_ptr());
  write_array(out, m.col_ind());
  write_array(out, m.val_ind_raw());
  write_array(out, m.vals_unique());
}

void save(const CsrDuVi& m, std::ostream& out) {
  write_header(out, SpcmTag::kCsrDuVi, m.nrows(), m.ncols());
  const CsrDuOptions& o = m.du().options();
  write_u32(out, o.max_unit);
  write_u32(out, o.split_threshold);
  write_u32(out, o.enable_rle ? 1 : 0);
  write_u32(out, o.rle_min_run);
  write_u32(out, static_cast<std::uint32_t>(m.width()));
  write_array(out, m.du().ctl());
  write_array(out, m.val_ind_raw());
  write_array(out, m.vals_unique());
}

Csr load_csr(std::istream& in) {
  index_t nrows = 0, ncols = 0;
  expect_header(in, SpcmTag::kCsr, &nrows, &ncols);
  auto row_ptr = read_array<index_t>(in);
  auto col_ind = read_array<std::uint32_t>(in);
  auto values = read_array<value_t>(in);
  return Csr::from_raw(nrows, ncols, std::move(row_ptr),
                       std::move(col_ind), std::move(values));
}

CsrDu load_csr_du(std::istream& in) {
  index_t nrows = 0, ncols = 0;
  expect_header(in, SpcmTag::kCsrDu, &nrows, &ncols);
  CsrDuOptions o;
  o.max_unit = read_u32(in);
  o.split_threshold = read_u32(in);
  o.enable_rle = read_u32(in) != 0;
  o.rle_min_run = read_u32(in);
  auto ctl = read_array<std::uint8_t>(in);
  auto values = read_array<value_t>(in);
  return CsrDu::from_raw(nrows, ncols, o, std::move(ctl),
                         std::move(values));
}

CsrVi load_csr_vi(std::istream& in) {
  index_t nrows = 0, ncols = 0;
  expect_header(in, SpcmTag::kCsrVi, &nrows, &ncols);
  const std::uint32_t w = read_u32(in);
  if (w != 1 && w != 2 && w != 4) {
    throw ParseError("spcm: invalid value-index width");
  }
  auto row_ptr = read_array<index_t>(in);
  auto col_ind = read_array<std::uint32_t>(in);
  auto val_ind = read_array<std::uint8_t>(in);
  auto vals_unique = read_array<value_t>(in);
  return CsrVi::from_raw(nrows, ncols, std::move(row_ptr),
                         std::move(col_ind), static_cast<ViWidth>(w),
                         std::move(val_ind), std::move(vals_unique));
}

CsrDuVi load_csr_du_vi(std::istream& in) {
  index_t nrows = 0, ncols = 0;
  expect_header(in, SpcmTag::kCsrDuVi, &nrows, &ncols);
  CsrDuOptions o;
  o.max_unit = read_u32(in);
  o.split_threshold = read_u32(in);
  o.enable_rle = read_u32(in) != 0;
  o.rle_min_run = read_u32(in);
  const std::uint32_t w = read_u32(in);
  if (w != 1 && w != 2 && w != 4) {
    throw ParseError("spcm: invalid value-index width");
  }
  auto ctl = read_array<std::uint8_t>(in);
  auto val_ind = read_array<std::uint8_t>(in);
  auto vals_unique = read_array<value_t>(in);
  return CsrDuVi::from_raw(nrows, ncols, o, std::move(ctl),
                           static_cast<ViWidth>(w), std::move(val_ind),
                           std::move(vals_unique));
}

namespace {

template <typename M>
void save_file_impl(const M& m, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) {
    throw Error("cannot open output file: " + path);
  }
  save(m, f);
}

std::ifstream open_input(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    throw Error("cannot open matrix container: " + path);
  }
  return f;
}

}  // namespace

void save_file(const Csr& m, const std::string& path) {
  save_file_impl(m, path);
}
void save_file(const CsrDu& m, const std::string& path) {
  save_file_impl(m, path);
}
void save_file(const CsrVi& m, const std::string& path) {
  save_file_impl(m, path);
}
void save_file(const CsrDuVi& m, const std::string& path) {
  save_file_impl(m, path);
}

Csr load_csr_file(const std::string& path) {
  std::ifstream f = open_input(path);
  return load_csr(f);
}
CsrDu load_csr_du_file(const std::string& path) {
  std::ifstream f = open_input(path);
  return load_csr_du(f);
}
CsrVi load_csr_vi_file(const std::string& path) {
  std::ifstream f = open_input(path);
  return load_csr_vi(f);
}
CsrDuVi load_csr_du_vi_file(const std::string& path) {
  std::ifstream f = open_input(path);
  return load_csr_du_vi(f);
}

}  // namespace spc
