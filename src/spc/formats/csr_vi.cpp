#include "spc/formats/csr_vi.hpp"

#include <cstring>
#include <unordered_map>

namespace spc {

ViWidth vi_width_for(usize_t unique_count) {
  if (unique_count <= (1ULL << 8)) {
    return ViWidth::kU8;
  }
  if (unique_count <= (1ULL << 16)) {
    return ViWidth::kU16;
  }
  SPC_CHECK_MSG(unique_count <= (1ULL << 32),
                "more than 2^32 unique values");
  return ViWidth::kU32;
}

CsrVi CsrVi::from_triplets(const Triplets& t) {
  SPC_CHECK_MSG(t.is_sorted_unique(),
                "CSR-VI construction requires sorted/combined triplets");
  CsrVi m;
  m.nrows_ = t.nrows();
  m.ncols_ = t.ncols();
  m.row_ptr_.assign(t.nrows() + 1, 0);
  m.col_ind_.resize(t.nnz());

  // Pass 1: census of unique values (bit-pattern identity) and CSR indices.
  std::unordered_map<std::uint64_t, std::uint32_t> index_of;
  index_of.reserve(t.nnz());
  std::vector<std::uint32_t> dense_ind(t.nnz());
  usize_t k = 0;
  for (const Entry& e : t.entries()) {
    ++m.row_ptr_[e.row + 1];
    m.col_ind_[k] = e.col;
    std::uint64_t bits;
    std::memcpy(&bits, &e.val, sizeof(bits));
    const auto [it, inserted] = index_of.emplace(
        bits, static_cast<std::uint32_t>(m.vals_unique_.size()));
    if (inserted) {
      m.vals_unique_.push_back(e.val);
    }
    dense_ind[k] = it->second;
    ++k;
  }
  for (index_t r = 0; r < t.nrows(); ++r) {
    m.row_ptr_[r + 1] += m.row_ptr_[r];
  }

  // Pass 2: narrow the value indices to the final width.
  m.width_ = vi_width_for(m.vals_unique_.size());
  m.val_ind_.resize(t.nnz() * static_cast<usize_t>(m.width_));
  switch (m.width_) {
    case ViWidth::kU8: {
      auto* p = m.val_ind_.data();
      for (usize_t i = 0; i < t.nnz(); ++i) {
        p[i] = static_cast<std::uint8_t>(dense_ind[i]);
      }
      break;
    }
    case ViWidth::kU16: {
      auto* p = reinterpret_cast<std::uint16_t*>(m.val_ind_.data());
      for (usize_t i = 0; i < t.nnz(); ++i) {
        p[i] = static_cast<std::uint16_t>(dense_ind[i]);
      }
      break;
    }
    case ViWidth::kU32: {
      auto* p = reinterpret_cast<std::uint32_t*>(m.val_ind_.data());
      for (usize_t i = 0; i < t.nnz(); ++i) {
        p[i] = dense_ind[i];
      }
      break;
    }
  }
  return m;
}

CsrVi CsrVi::from_raw(index_t nrows, index_t ncols,
                      aligned_vector<index_t> row_ptr,
                      aligned_vector<std::uint32_t> col_ind, ViWidth width,
                      aligned_vector<std::uint8_t> val_ind,
                      aligned_vector<value_t> vals_unique) {
  const usize_t nnz = col_ind.size();
  if (row_ptr.size() != static_cast<std::size_t>(nrows) + 1 ||
      row_ptr.front() != 0 || row_ptr.back() != nnz ||
      val_ind.size() != nnz * static_cast<usize_t>(width)) {
    throw ParseError("csr-vi: inconsistent array shapes");
  }
  for (index_t r = 0; r < nrows; ++r) {
    if (row_ptr[r] > row_ptr[r + 1]) {
      throw ParseError("csr-vi: row_ptr is not monotone");
    }
  }
  for (const std::uint32_t c : col_ind) {
    if (c >= ncols) {
      throw ParseError("csr-vi: column index out of bounds");
    }
  }
  const usize_t uniq = vals_unique.size();
  const auto check_ind = [&](auto ind) {
    if (static_cast<usize_t>(ind) >= uniq) {
      throw ParseError("csr-vi: value index out of bounds");
    }
  };
  switch (width) {
    case ViWidth::kU8:
      for (usize_t k = 0; k < nnz; ++k) {
        check_ind(val_ind[k]);
      }
      break;
    case ViWidth::kU16:
      for (usize_t k = 0; k < nnz; ++k) {
        check_ind(
            reinterpret_cast<const std::uint16_t*>(val_ind.data())[k]);
      }
      break;
    case ViWidth::kU32:
      for (usize_t k = 0; k < nnz; ++k) {
        check_ind(
            reinterpret_cast<const std::uint32_t*>(val_ind.data())[k]);
      }
      break;
  }
  CsrVi m;
  m.nrows_ = nrows;
  m.ncols_ = ncols;
  m.width_ = width;
  m.row_ptr_ = std::move(row_ptr);
  m.col_ind_ = std::move(col_ind);
  m.val_ind_ = std::move(val_ind);
  m.vals_unique_ = std::move(vals_unique);
  return m;
}

value_t CsrVi::value_at(usize_t k) const {
  SPC_CHECK(k < nnz());
  switch (width_) {
    case ViWidth::kU8:
      return vals_unique_[val_ind_[k]];
    case ViWidth::kU16:
      return vals_unique_[val_ind_as<std::uint16_t>()[k]];
    case ViWidth::kU32:
      return vals_unique_[val_ind_as<std::uint32_t>()[k]];
  }
  return 0.0;
}

Triplets CsrVi::to_triplets() const {
  Triplets t(nrows_, ncols_);
  t.reserve(nnz());
  for (index_t r = 0; r < nrows_; ++r) {
    for (index_t j = row_ptr_[r]; j < row_ptr_[r + 1]; ++j) {
      t.add(r, col_ind_[j], value_at(j));
    }
  }
  return t;
}

}  // namespace spc
