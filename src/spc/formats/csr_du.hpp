// CSR-DU ("CSR Delta Unit") — the paper's index-compression format (§IV).
//
// The column-index array of CSR is replaced by a byte stream `ctl` of
// *units*. A unit covers up to 255 consecutive non-zeros of one row whose
// column deltas share a storage class (u8/u16/u32/u64):
//
//   unit := uflags(1B) usize(1B) [rskip:varint] ujmp:varint ucis[usize-1]
//
//   uflags bits:  [1:0] delta class (log2 of byte width)
//                 bit 5 RJMP  — varint `rskip` follows: count of empty rows
//                               skipped before this unit's row (extension;
//                               the paper's matrices have no empty rows)
//                 bit 6 NR    — unit starts a new row (y_idx advances,
//                               x_idx resets to 0)
//                 bit 7 RLE   — constant-stride run: all usize-1 deltas
//                               equal one value, stored as a varint after
//                               ujmp; ucis omitted. stride==1 is the
//                               CF'08-style dense run; larger strides
//                               capture DIA-like fixed-offset structure
//                               (the CSX direction of the authors' later
//                               work). Off by default; exercised by the
//                               ablation benches.
//
// `ujmp` is the column distance of the unit's first element from the
// previous position (absolute column for NR units). `ucis` holds the
// remaining usize-1 deltas, little-endian, in the class width. Units never
// span rows (§IV), so any row boundary is a unit boundary — which is what
// makes the multithreaded row partitioning a pure offset computation.
//
// Construction is a single O(nnz) scan (§IV: "no overhead in terms of time
// complexity compared to CSR").
#pragma once

#include <cstdint>
#include <vector>

#include "spc/mm/triplets.hpp"
#include "spc/mm/stats.hpp"
#include "spc/support/aligned.hpp"
#include "spc/support/types.hpp"

namespace spc {

// uflags bit layout.
inline constexpr std::uint8_t kDuClassMask = 0x03;
inline constexpr std::uint8_t kDuRJmp = 0x20;
inline constexpr std::uint8_t kDuNewRow = 0x40;
inline constexpr std::uint8_t kDuRle = 0x80;

/// Encoder tuning knobs (defaults reproduce the paper's configuration;
/// non-defaults are exercised by the ablation benches).
struct CsrDuOptions {
  /// Maximum non-zeros per unit (usize is one byte).
  std::uint32_t max_unit = 255;
  /// A delta needing a wider class than the open unit closes that unit
  /// when the unit already holds at least this many elements; otherwise
  /// the whole unit is widened. Small values favour homogeneous (smaller)
  /// units; large values favour fewer (longer) units.
  std::uint32_t split_threshold = 8;
  /// Detect constant-stride delta runs and emit RLE units without ucis
  /// bytes (stride 1 = dense run).
  bool enable_rle = false;
  /// Minimum run length that becomes an RLE unit.
  std::uint32_t rle_min_run = 16;
};

class CsrDu {
 public:
  CsrDu() = default;

  static CsrDu from_triplets(const Triplets& t,
                             const CsrDuOptions& opts = {});

  /// Reconstructs a CSR-DU matrix from a raw ctl stream and value array
  /// (the deserialization path). The stream is fully validated: unit
  /// headers must parse, varints must terminate inside the buffer,
  /// decoded coordinates must stay inside nrows × ncols, and the element
  /// count must match `values`. Throws ParseError on any violation, so
  /// untrusted inputs cannot produce out-of-bounds kernel accesses.
  static CsrDu from_raw(index_t nrows, index_t ncols,
                        const CsrDuOptions& opts,
                        aligned_vector<std::uint8_t> ctl,
                        aligned_vector<value_t> values);

  index_t nrows() const { return nrows_; }
  index_t ncols() const { return ncols_; }
  usize_t nnz() const { return nnz_; }

  const aligned_vector<std::uint8_t>& ctl() const { return ctl_; }
  const aligned_vector<value_t>& values() const { return values_; }
  const CsrDuOptions& options() const { return opts_; }

  /// Releases the numerical values array. Used by CSR-DU-VI, which stores
  /// values through its own indirection; the ctl stream and all slice
  /// machinery remain valid (Slice::values becomes null).
  void drop_values() {
    values_.clear();
    values_.shrink_to_fit();
  }

  usize_t ctl_bytes() const { return ctl_.size(); }
  /// Matrix data size: ctl stream + numerical values.
  usize_t bytes() const {
    return ctl_.size() + values_.size() * sizeof(value_t);
  }

  // --- construction statistics (reported by Fig 7 / ablation benches) ---
  usize_t unit_count() const { return unit_count_; }
  usize_t unit_count_class(DeltaClass c) const {
    return units_per_class_[static_cast<std::uint8_t>(c)];
  }
  usize_t rle_unit_count() const { return rle_units_; }

  /// Per-unit-class structure of the ctl stream, computed by a
  /// payload-skipping O(units) scan — valid for any construction path
  /// (from_triplets or from_raw). The dispatch layer uses it to pick a
  /// decode strategy per matrix (SpmvInstance::prepare()): e.g. streams
  /// of mostly sub-vector-width units stay on the scalar decoder.
  struct UnitHistogram {
    usize_t units = 0;
    usize_t units_per_class[4] = {0, 0, 0, 0};  ///< indexed by DeltaClass
    usize_t elems_per_class[4] = {0, 0, 0, 0};
    usize_t rle_units = 0;          ///< all constant-stride units
    usize_t rle_elems = 0;
    usize_t seq_units = 0;          ///< the stride-1 (dense run) subset
    usize_t seq_elems = 0;
    usize_t nnz = 0;                ///< total elements across units

    /// Mean elements per unit; 0 for an empty stream.
    double avg_unit_elems() const {
      return units != 0
                 ? static_cast<double>(nnz) / static_cast<double>(units)
                 : 0.0;
    }
  };

  /// Scans the ctl stream and histograms its units (delta classes, RLE
  /// and stride-1 runs, element counts).
  UnitHistogram unit_histogram() const;

  /// A thread's view: a row range plus the ctl/value offsets where it
  /// starts — exactly the per-thread state the paper describes (§IV).
  struct Slice {
    const std::uint8_t* ctl = nullptr;
    const std::uint8_t* ctl_end = nullptr;
    const value_t* values = nullptr;  ///< null after drop_values()
    usize_t val_offset = 0;  ///< index of the slice's first non-zero
    index_t row_begin = 0;   ///< first row owned by this slice
    index_t row_end = 0;     ///< one past the last row owned
    /// Row-counter state entering the slice: the last row that had a unit
    /// before this slice (-1 at stream start). The kernel's NR handling
    /// advances from here.
    std::int64_t row_state = -1;
    usize_t nnz = 0;
  };

  /// The whole matrix as one slice (serial kernel input).
  Slice full() const;

  /// Computes the slice for rows [row_begin, row_end). O(ctl) scan; done
  /// once per partition, outside the timed region.
  Slice slice(index_t row_begin, index_t row_end) const;

  /// Multi-boundary form: the slices for every consecutive row range
  /// bounds[i]..bounds[i+1] in one O(ctl) scan — the chunk-boundary
  /// query of the work-stealing scheduler, which needs hundreds of
  /// slices where slice()'s per-call scan would cost O(chunks × ctl).
  /// `bounds` must be non-decreasing with bounds.back() <= nrows; the
  /// result element i equals slice(bounds[i], bounds[i+1]) exactly
  /// (including the zero-length anchoring of empty-row ranges, so
  /// consecutive slices still tile the ctl stream).
  std::vector<Slice> slices(const std::vector<index_t>& bounds) const;

  /// Decoded view of one unit, for tests and the format inspector.
  struct DecodedUnit {
    std::uint8_t uflags = 0;
    std::uint32_t usize = 0;
    bool new_row = false;
    bool rle = false;
    DeltaClass cls = DeltaClass::kU8;
    std::uint64_t rskip = 0;
    std::uint64_t ujmp = 0;
    std::uint64_t stride = 0;         ///< RLE units: the constant delta
    std::vector<std::uint64_t> ucis;  ///< usize-1 deltas (implicit for RLE)
  };

  /// Decodes the full ctl stream into unit descriptions (Table I view).
  std::vector<DecodedUnit> decode_units() const;

  /// Streaming element cursor over a slice — the building block for
  /// tools that traverse the compressed structure without materializing
  /// triplets (inspection, transcoding, custom kernels).
  class Cursor {
   public:
    explicit Cursor(const Slice& s);

    /// Advances to the next non-zero; fills row/col and returns true, or
    /// returns false at the end of the slice.
    bool next(index_t* row, index_t* col);

    /// Index of the element just returned within the whole matrix's
    /// non-zero order (valid after a successful next()).
    usize_t element_index() const { return val_index_ - 1; }

   private:
    const std::uint8_t* p_;
    const std::uint8_t* end_;
    usize_t val_index_;
    std::int64_t row_;
    std::uint64_t col_ = 0;
    std::uint32_t remaining_ = 0;   ///< elements left in the open unit
    std::uint8_t uflags_ = 0;
    std::uint64_t stride_ = 0;      ///< RLE stride of the open unit
  };

  /// Exact inverse conversion.
  Triplets to_triplets() const;

 private:
  index_t nrows_ = 0;
  index_t ncols_ = 0;
  usize_t nnz_ = 0;
  CsrDuOptions opts_;
  aligned_vector<std::uint8_t> ctl_;
  aligned_vector<value_t> values_;
  usize_t unit_count_ = 0;
  usize_t units_per_class_[4] = {0, 0, 0, 0};
  usize_t rle_units_ = 0;
};

}  // namespace spc
