// Binary serialization of encoded matrices.
//
// Encoding a large matrix (CSR-DU unit formation, CSR-VI value census)
// is done once; iterative applications re-load the encoded form. The
// container is a little-endian framed format:
//
//   magic "SPCM" | version u32 | format tag u32 | nrows u32 | ncols u32 |
//   per-format sections, each: length u64 (element count) + raw payload
//
// Loading goes through the formats' validated `from_raw` constructors,
// so a corrupted or malicious file throws ParseError instead of
// producing out-of-bounds kernel accesses.
#pragma once

#include <iosfwd>
#include <string>

#include "spc/formats/csr.hpp"
#include "spc/formats/csr_du.hpp"
#include "spc/formats/csr_du_vi.hpp"
#include "spc/formats/csr_vi.hpp"

namespace spc {

inline constexpr std::uint32_t kSpcmVersion = 1;

enum class SpcmTag : std::uint32_t {
  kCsr = 0,
  kCsrDu = 1,
  kCsrVi = 2,
  kCsrDuVi = 3,
};

/// Peeks the format tag of a stream positioned at a container header
/// (stream is left positioned after the header). Throws ParseError on a
/// bad magic/version.
SpcmTag read_spcm_header(std::istream& in, index_t* nrows, index_t* ncols);

void save(const Csr& m, std::ostream& out);
void save(const CsrDu& m, std::ostream& out);
void save(const CsrVi& m, std::ostream& out);
void save(const CsrDuVi& m, std::ostream& out);

Csr load_csr(std::istream& in);
CsrDu load_csr_du(std::istream& in);
CsrVi load_csr_vi(std::istream& in);
CsrDuVi load_csr_du_vi(std::istream& in);

// File convenience wrappers; throw Error when the file cannot be opened.
void save_file(const Csr& m, const std::string& path);
void save_file(const CsrDu& m, const std::string& path);
void save_file(const CsrVi& m, const std::string& path);
void save_file(const CsrDuVi& m, const std::string& path);
Csr load_csr_file(const std::string& path);
CsrDu load_csr_du_file(const std::string& path);
CsrVi load_csr_vi_file(const std::string& path);
CsrDuVi load_csr_du_vi_file(const std::string& path);

}  // namespace spc
