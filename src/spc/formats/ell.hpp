// ELLPACK/ITPACK format (§III-A of the paper).
//
// Every row is padded to the same width K (the maximum row length):
// col_ind and values become dense nrows×K arrays in row-major layout.
// Regular structure makes the kernel branch-free and vectorizable, at the
// cost of K·nrows storage — catastrophic for skewed row lengths, which is
// exactly the regularity/space trade-off the paper's related work cites.
//
// Padding entries store value 0 and repeat the row's last valid column
// (or 0 for empty rows) so gather loads stay in bounds.
#pragma once

#include "spc/mm/triplets.hpp"
#include "spc/support/aligned.hpp"
#include "spc/support/types.hpp"

namespace spc {

class Ell {
 public:
  Ell() = default;

  /// Builds with K = max row length. `max_width_factor` guards against
  /// pathological blowup: throws InvalidArgument when K exceeds
  /// `max_width_factor` × mean row length (0 disables the guard).
  static Ell from_triplets(const Triplets& t, double max_width_factor = 0.0);

  index_t nrows() const { return nrows_; }
  index_t ncols() const { return ncols_; }
  usize_t nnz() const { return nnz_; }
  index_t width() const { return width_; }

  /// Stored slots including padding (nrows * width).
  usize_t stored() const { return values_.size(); }
  double padding_ratio() const {
    return nnz_ ? static_cast<double>(stored()) / static_cast<double>(nnz_)
                : 1.0;
  }

  const aligned_vector<index_t>& col_ind() const { return col_ind_; }
  const aligned_vector<value_t>& values() const { return values_; }

  usize_t bytes() const {
    return col_ind_.size() * sizeof(index_t) +
           values_.size() * sizeof(value_t);
  }

  Triplets to_triplets() const;

 private:
  index_t nrows_ = 0;
  index_t ncols_ = 0;
  usize_t nnz_ = 0;
  index_t width_ = 0;
  aligned_vector<index_t> col_ind_;  ///< nrows * width, row-major
  aligned_vector<value_t> values_;   ///< nrows * width, row-major
};

}  // namespace spc
