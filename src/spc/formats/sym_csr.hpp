// Symmetric CSR (SSS-style) — the symmetry exploitation of Lee et al.
// (§III-C of the paper): store the diagonal densely and only the strictly
// lower triangle in CSR. Index *and* value data halve, the largest
// working-set reduction available when the matrix is symmetric — at the
// cost of a scatter into y for the implicit upper triangle, which forces
// per-thread y copies in the multithreaded kernel (spmv_sym_mt).
#pragma once

#include "spc/mm/triplets.hpp"
#include "spc/support/aligned.hpp"
#include "spc/support/types.hpp"

namespace spc {

class SymCsr {
 public:
  SymCsr() = default;

  /// True when `t` is square and numerically symmetric (bit-exact value
  /// equality, matching the storage scheme's exact reconstruction).
  static bool applicable(const Triplets& t);

  /// Builds from a symmetric matrix; throws InvalidArgument otherwise.
  static SymCsr from_triplets(const Triplets& t);

  index_t nrows() const { return n_; }
  index_t ncols() const { return n_; }
  /// Non-zeros of the *full* matrix this storage represents.
  usize_t nnz() const { return nnz_full_; }
  /// Stored elements: diagonal + strict lower triangle.
  usize_t stored() const { return n_ + values_.size(); }

  const aligned_vector<value_t>& diag() const { return diag_; }
  const aligned_vector<index_t>& row_ptr() const { return row_ptr_; }
  const aligned_vector<index_t>& col_ind() const { return col_ind_; }
  const aligned_vector<value_t>& values() const { return values_; }

  usize_t bytes() const {
    return diag_.size() * sizeof(value_t) +
           row_ptr_.size() * sizeof(index_t) +
           col_ind_.size() * sizeof(index_t) +
           values_.size() * sizeof(value_t);
  }

  Triplets to_triplets() const;

 private:
  index_t n_ = 0;
  usize_t nnz_full_ = 0;
  aligned_vector<value_t> diag_;      ///< n entries (0 where absent)
  aligned_vector<index_t> row_ptr_;   ///< strict lower triangle, CSR
  aligned_vector<index_t> col_ind_;
  aligned_vector<value_t> values_;
};

}  // namespace spc
