// Internal: per-tier kernel-table constructors, one per translation unit
// (kernels_scalar.cpp / kernels_sse42.cpp / kernels_avx2.cpp). Only the
// scalar TU is unconditionally compiled; the others exist when the
// SPC_HAVE_*_TU definitions say the build produced them (x86 target and
// the compiler accepted the -march flags). dispatch.cpp is the only
// consumer; user code goes through spc::kernel_table().
#pragma once

#include "spc/spmv/dispatch.hpp"

namespace spc::detail {

const KernelTable& scalar_table();

#if SPC_HAVE_SSE42_TU
const KernelTable& sse42_table();
#endif

#if SPC_HAVE_AVX2_TU
const KernelTable& avx2_table();
#endif

}  // namespace spc::detail
