// SSE4.2 dispatch tier — 128-bit (2-wide) kernels.
//
// Compiled with -msse4.2 (see CMakeLists.txt); only ever *called* after
// runtime detection confirms the CPU supports it. SSE has no gather, so
// the x loads are assembled with _mm_set_pd from scalar-resolved column
// indices; the win over scalar comes from pairing the value loads and
// multiplies and from the two independent accumulator chains. The DU
// entries fall through to scalar: the DU inner loop is dominated by the
// serial delta chain and the scalar kernel's 4-deep unroll already
// saturates it without vector registers.
//
// Accumulation order: lane partials reassociate the per-row sum, so
// results may differ from the scalar tier by normal FP reassociation
// error (the dispatch fuzz test bounds it).
#include <nmmintrin.h>

#include "spc/spmv/dispatch_tables.hpp"
#include "spc/spmv/kernels.hpp"

namespace spc::detail {

namespace {

inline double hsum128(__m128d v) {
  const __m128d hi = _mm_unpackhi_pd(v, v);
  return _mm_cvtsd_f64(_mm_add_sd(v, hi));
}

template <typename ColT>
void csr_sse42(const index_t* __restrict row_ptr,
               const ColT* __restrict col_ind,
               const value_t* __restrict values, const value_t* x,
               value_t* y, index_t row_begin, index_t row_end) {
  for (index_t i = row_begin; i < row_end; ++i) {
    index_t j = row_ptr[i];
    const index_t end = row_ptr[i + 1];
    __m128d acc0 = _mm_setzero_pd();
    __m128d acc1 = _mm_setzero_pd();
    for (; j + 4 <= end; j += 4) {
      __builtin_prefetch(col_ind + j + 64, 0, 1);
      __builtin_prefetch(values + j + 32, 0, 1);
      const __m128d x0 = _mm_set_pd(x[col_ind[j + 1]], x[col_ind[j]]);
      const __m128d x1 = _mm_set_pd(x[col_ind[j + 3]], x[col_ind[j + 2]]);
      acc0 = _mm_add_pd(acc0, _mm_mul_pd(_mm_loadu_pd(values + j), x0));
      acc1 = _mm_add_pd(acc1, _mm_mul_pd(_mm_loadu_pd(values + j + 2), x1));
    }
    value_t acc = hsum128(_mm_add_pd(acc0, acc1));
    for (; j < end; ++j) {
      acc += values[j] * x[col_ind[j]];
    }
    y[i] = acc;
  }
}

template <typename IndT>
void csr_vi_sse42(const index_t* __restrict row_ptr,
                  const std::uint32_t* __restrict col_ind,
                  const IndT* __restrict val_ind,
                  const value_t* __restrict vals_unique, const value_t* x,
                  value_t* y, index_t row_begin, index_t row_end) {
  for (index_t i = row_begin; i < row_end; ++i) {
    index_t j = row_ptr[i];
    const index_t end = row_ptr[i + 1];
    __m128d acc0 = _mm_setzero_pd();
    __m128d acc1 = _mm_setzero_pd();
    for (; j + 4 <= end; j += 4) {
      __builtin_prefetch(col_ind + j + 64, 0, 1);
      __builtin_prefetch(val_ind + j + 64, 0, 1);
      const __m128d v0 = _mm_set_pd(vals_unique[val_ind[j + 1]],
                                    vals_unique[val_ind[j]]);
      const __m128d v1 = _mm_set_pd(vals_unique[val_ind[j + 3]],
                                    vals_unique[val_ind[j + 2]]);
      const __m128d x0 = _mm_set_pd(x[col_ind[j + 1]], x[col_ind[j]]);
      const __m128d x1 = _mm_set_pd(x[col_ind[j + 3]], x[col_ind[j + 2]]);
      acc0 = _mm_add_pd(acc0, _mm_mul_pd(v0, x0));
      acc1 = _mm_add_pd(acc1, _mm_mul_pd(v1, x1));
    }
    value_t acc = hsum128(_mm_add_pd(acc0, acc1));
    for (; j < end; ++j) {
      acc += vals_unique[val_ind[j]] * x[col_ind[j]];
    }
    y[i] = acc;
  }
}

// The symmetric kernels pair the dot side (lower-triangle
// multiply-accumulate) like csr_sse42; the scatter side (mirrored upper
// triangle) stays scalar — it is a chain of read-modify-write stores to
// data-dependent addresses with possible lane collisions. Long rows run
// the 2-wide dot sweep then a scalar scatter sweep over the same
// (L1-hot) span; short rows take one combined scalar pass.

void sym_csr_sse42(const index_t* __restrict row_ptr,
                   const index_t* __restrict col_ind,
                   const value_t* __restrict values,
                   const value_t* __restrict diag, const value_t* x,
                   value_t* y, value_t* __restrict win, index_t win_begin,
                   index_t direct_begin, index_t row_begin,
                   index_t row_end) {
  for (index_t r = row_begin; r < row_end; ++r) {
    index_t j = row_ptr[r];
    const index_t end = row_ptr[r + 1];
    const value_t xr = x[r];
    value_t acc = diag[r] * xr;
    if (end - j < 4) {
      for (; j < end; ++j) {
        const index_t c = col_ind[j];
        const value_t v = values[j];
        acc += v * x[c];
        if (c >= direct_begin) {
          y[c] += v * xr;
        } else {
          win[c - win_begin] += v * xr;
        }
      }
      y[r] = acc;
      continue;
    }
    const index_t j0 = j;
    __m128d acc0 = _mm_setzero_pd();
    __m128d acc1 = _mm_setzero_pd();
    for (; j + 4 <= end; j += 4) {
      __builtin_prefetch(col_ind + j + 64, 0, 1);
      __builtin_prefetch(values + j + 32, 0, 1);
      const __m128d x0 = _mm_set_pd(x[col_ind[j + 1]], x[col_ind[j]]);
      const __m128d x1 = _mm_set_pd(x[col_ind[j + 3]], x[col_ind[j + 2]]);
      acc0 = _mm_add_pd(acc0, _mm_mul_pd(_mm_loadu_pd(values + j), x0));
      acc1 = _mm_add_pd(acc1, _mm_mul_pd(_mm_loadu_pd(values + j + 2), x1));
    }
    acc += hsum128(_mm_add_pd(acc0, acc1));
    for (; j < end; ++j) {
      acc += values[j] * x[col_ind[j]];
    }
    for (index_t s = j0; s < end; ++s) {
      const index_t c = col_ind[s];
      const value_t v = values[s];
      if (c >= direct_begin) {
        y[c] += v * xr;
      } else {
        win[c - win_begin] += v * xr;
      }
    }
    y[r] = acc;
  }
}

template <typename IndT>
void sym_csr_vi_sse42(const index_t* __restrict row_ptr,
                      const index_t* __restrict col_ind,
                      const IndT* __restrict val_ind,
                      const IndT* __restrict diag_ind,
                      const value_t* __restrict vals_unique,
                      const value_t* x, value_t* y,
                      value_t* __restrict win, index_t win_begin,
                      index_t direct_begin, index_t row_begin,
                      index_t row_end) {
  for (index_t r = row_begin; r < row_end; ++r) {
    index_t j = row_ptr[r];
    const index_t end = row_ptr[r + 1];
    const value_t xr = x[r];
    value_t acc = vals_unique[diag_ind[r]] * xr;
    if (end - j < 4) {
      for (; j < end; ++j) {
        const index_t c = col_ind[j];
        const value_t v = vals_unique[val_ind[j]];
        acc += v * x[c];
        if (c >= direct_begin) {
          y[c] += v * xr;
        } else {
          win[c - win_begin] += v * xr;
        }
      }
      y[r] = acc;
      continue;
    }
    const index_t j0 = j;
    __m128d acc0 = _mm_setzero_pd();
    __m128d acc1 = _mm_setzero_pd();
    for (; j + 4 <= end; j += 4) {
      __builtin_prefetch(col_ind + j + 64, 0, 1);
      __builtin_prefetch(val_ind + j + 64, 0, 1);
      const __m128d v0 = _mm_set_pd(vals_unique[val_ind[j + 1]],
                                    vals_unique[val_ind[j]]);
      const __m128d v1 = _mm_set_pd(vals_unique[val_ind[j + 3]],
                                    vals_unique[val_ind[j + 2]]);
      const __m128d x0 = _mm_set_pd(x[col_ind[j + 1]], x[col_ind[j]]);
      const __m128d x1 = _mm_set_pd(x[col_ind[j + 3]], x[col_ind[j + 2]]);
      acc0 = _mm_add_pd(acc0, _mm_mul_pd(v0, x0));
      acc1 = _mm_add_pd(acc1, _mm_mul_pd(v1, x1));
    }
    acc += hsum128(_mm_add_pd(acc0, acc1));
    for (; j < end; ++j) {
      acc += vals_unique[val_ind[j]] * x[col_ind[j]];
    }
    for (index_t s = j0; s < end; ++s) {
      const index_t c = col_ind[s];
      const value_t v = vals_unique[val_ind[s]];
      if (c >= direct_begin) {
        y[c] += v * xr;
      } else {
        win[c - win_begin] += v * xr;
      }
    }
    y[r] = acc;
  }
}

}  // namespace

const KernelTable& sse42_table() {
  static const KernelTable table = [] {
    // DU entries fall through to the scalar tier (see file comment).
    KernelTable t = scalar_table();
    t.tier = IsaTier::kSse42;
    t.csr = &csr_sse42<std::uint32_t>;
    t.csr16 = &csr_sse42<std::uint16_t>;
    t.csr_vi_u8 = &csr_vi_sse42<std::uint8_t>;
    t.csr_vi_u16 = &csr_vi_sse42<std::uint16_t>;
    t.csr_vi_u32 = &csr_vi_sse42<std::uint32_t>;
    t.sym_csr = &sym_csr_sse42;
    t.sym_csr_vi_u8 = &sym_csr_vi_sse42<std::uint8_t>;
    t.sym_csr_vi_u16 = &sym_csr_vi_sse42<std::uint16_t>;
    t.sym_csr_vi_u32 = &sym_csr_vi_sse42<std::uint32_t>;
    return t;
  }();
  return table;
}

}  // namespace spc::detail
