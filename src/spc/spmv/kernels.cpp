#include "spc/spmv/kernels.hpp"

#include <algorithm>
#include <cstring>

#include "spc/support/varint.hpp"

namespace spc {

namespace {

// Unaligned little-endian loads for the ucis arrays.
inline std::uint32_t load_u16(const std::uint8_t* p) {
  std::uint16_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline std::uint64_t load_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

void spmv(const Coo& m, const value_t* x, value_t* y) {
  std::fill(y, y + m.nrows(), 0.0);
  const index_t* const __restrict rows = m.rows().data();
  const index_t* const __restrict cols = m.cols().data();
  const value_t* const __restrict values = m.values().data();
  const usize_t nnz = m.nnz();
  for (usize_t k = 0; k < nnz; ++k) {
    y[rows[k]] += values[k] * x[cols[k]];
  }
}

void spmv(const Csc& m, const value_t* x, value_t* y) {
  std::fill(y, y + m.nrows(), 0.0);
  spmv_csc_cols(m, x, y, 0, m.ncols());
}

void spmv_csc_cols(const Csc& m, const value_t* x, value_t* y,
                   index_t col_begin, index_t col_end) {
  const index_t* const __restrict col_ptr = m.col_ptr().data();
  const index_t* const __restrict row_ind = m.row_ind().data();
  const value_t* const __restrict values = m.values().data();
  for (index_t c = col_begin; c < col_end; ++c) {
    const value_t xc = x[c];
    const index_t end = col_ptr[c + 1];
    for (index_t j = col_ptr[c]; j < end; ++j) {
      y[row_ind[j]] += values[j] * xc;
    }
  }
}

void spmv_bcsr_raw(index_t block_rows, index_t block_cols, index_t nrows,
                   index_t ncols, const index_t* block_row_ptr,
                   const index_t* block_col, const value_t* values,
                   const value_t* x, value_t* y, index_t block_row_begin,
                   index_t block_row_end) {
  const index_t br = block_rows;
  const index_t bc = block_cols;
  const usize_t block_elems = static_cast<usize_t>(br) * bc;
  const index_t* const __restrict brp = block_row_ptr;
  const index_t* const __restrict bcol = block_col;
  const value_t* const __restrict vals = values;

  value_t acc[8];
  for (index_t brow = block_row_begin; brow < block_row_end; ++brow) {
    const index_t row0 = brow * br;
    const index_t live_rows = std::min<index_t>(br, nrows - row0);
    for (index_t lr = 0; lr < live_rows; ++lr) {
      acc[lr] = 0.0;
    }
    const index_t bend = brp[brow + 1];
    for (index_t b = brp[brow]; b < bend; ++b) {
      const value_t* const blk = vals + static_cast<usize_t>(b) * block_elems;
      const index_t col0 = bcol[b];
      const index_t live_cols = std::min<index_t>(bc, ncols - col0);
      // Edge blocks (ragged right/bottom) use the clamped loop bounds; the
      // padding slots hold zeros but x/y must not be read out of range.
      for (index_t lr = 0; lr < live_rows; ++lr) {
        value_t a = 0.0;
        const value_t* const brow_vals = blk + static_cast<usize_t>(lr) * bc;
        for (index_t lc = 0; lc < live_cols; ++lc) {
          a += brow_vals[lc] * x[col0 + lc];
        }
        acc[lr] += a;
      }
    }
    for (index_t lr = 0; lr < live_rows; ++lr) {
      y[row0 + lr] = acc[lr];
    }
  }
}

void spmv_bcsr_range(const Bcsr& m, const value_t* x, value_t* y,
                     index_t block_row_begin, index_t block_row_end) {
  spmv_bcsr_raw(m.block_rows(), m.block_cols(), m.nrows(), m.ncols(),
                m.block_row_ptr().data(), m.block_col().data(),
                m.values().data(), x, y, block_row_begin, block_row_end);
}

void spmv(const Bcsr& m, const value_t* x, value_t* y) {
  spmv_bcsr_range(m, x, y, 0, m.nblock_rows());
}

void spmv_ell_raw(index_t width, const index_t* col_ind,
                  const value_t* values, const value_t* x, value_t* y,
                  index_t row_begin, index_t row_end) {
  const index_t* const __restrict ci = col_ind;
  const value_t* const __restrict vv = values;
  for (index_t r = row_begin; r < row_end; ++r) {
    const usize_t base = static_cast<usize_t>(r) * width;
    value_t acc = 0.0;
    for (index_t k = 0; k < width; ++k) {
      acc += vv[base + k] * x[ci[base + k]];
    }
    y[r] = acc;
  }
}

void spmv_ell_range(const Ell& m, const value_t* x, value_t* y,
                    index_t row_begin, index_t row_end) {
  spmv_ell_raw(m.width(), m.col_ind().data(), m.values().data(), x, y,
               row_begin, row_end);
}

void spmv(const Ell& m, const value_t* x, value_t* y) {
  spmv_ell_range(m, x, y, 0, m.nrows());
}

void spmv_dia_range(const Dia& m, const value_t* x, value_t* y,
                    index_t row_begin, index_t row_end) {
  std::fill(y + row_begin, y + row_end, 0.0);
  const value_t* const __restrict values = m.values().data();
  const index_t nrows = m.nrows();
  const std::int64_t ncols = m.ncols();
  for (std::size_t d = 0; d < m.ndiags(); ++d) {
    const std::int64_t off = m.offsets()[d];
    // Rows where the diagonal stays inside the matrix and the range.
    std::int64_t rlo = row_begin;
    if (off < 0) {
      rlo = std::max<std::int64_t>(rlo, -off);
    }
    std::int64_t rhi = row_end;
    if (off > 0) {
      rhi = std::min<std::int64_t>(rhi, ncols - off);
    }
    const value_t* const diag = values + d * static_cast<usize_t>(nrows);
    for (std::int64_t r = rlo; r < rhi; ++r) {
      y[r] += diag[r] * x[r + off];
    }
  }
}

void spmv(const Dia& m, const value_t* x, value_t* y) {
  spmv_dia_range(m, x, y, 0, m.nrows());
}

void spmv_jds_range(const Jds& m, const value_t* x, value_t* y,
                    index_t i_begin, index_t i_end) {
  const index_t* const __restrict perm = m.perm().data();
  const index_t* const __restrict jd_ptr = m.jd_ptr().data();
  const index_t* const __restrict col_ind = m.col_ind().data();
  const value_t* const __restrict values = m.values().data();
  for (index_t i = i_begin; i < i_end; ++i) {
    y[perm[i]] = 0.0;
  }
  const index_t njd = m.njdiags();
  for (index_t j = 0; j < njd; ++j) {
    const index_t len = jd_ptr[j + 1] - jd_ptr[j];
    const index_t hi = std::min(i_end, len);
    for (index_t i = i_begin; i < hi; ++i) {
      const usize_t k = static_cast<usize_t>(jd_ptr[j]) + i;
      y[perm[i]] += values[k] * x[col_ind[k]];
    }
  }
}

void spmv(const Jds& m, const value_t* x, value_t* y) {
  spmv_jds_range(m, x, y, 0, m.nrows());
}

void spmv(const CsrDu::Slice& s, const value_t* x, value_t* y) {
  const std::uint8_t* p = s.ctl;
  const std::uint8_t* const end = s.ctl_end;
  const value_t* __restrict v = s.values;
  std::int64_t row = s.row_state;
  const std::int64_t row_begin = s.row_begin;
  std::uint64_t x_idx = 0;
  value_t acc = 0.0;
  bool active = false;

  while (p < end) {
    const std::uint8_t uflags = *p++;
    std::uint32_t usize = *p++;
    if (uflags & kDuNewRow) {
      if (active) {
        y[row] = acc;
      }
      std::uint64_t extra = 0;
      if (uflags & kDuRJmp) {
        extra = varint_decode(p);
      }
      // Rows skipped over are empty; zero the ones this slice owns.
      for (std::int64_t r = std::max(row + 1, row_begin);
           r < row + 1 + static_cast<std::int64_t>(extra); ++r) {
        y[r] = 0.0;
      }
      row += 1 + static_cast<std::int64_t>(extra);
      x_idx = 0;
      acc = 0.0;
      active = true;
    }
    x_idx += varint_decode(p);

    if (uflags & kDuRle) {
      // Constant-stride run: usize elements at x_idx, x_idx+stride, ...
      const std::uint64_t stride = varint_decode(p);
      std::uint64_t idx = x_idx;
      for (std::uint32_t k = 0; k < usize; ++k) {
        acc += v[k] * x[idx];
        idx += stride;
      }
      v += usize;
      x_idx = idx - stride;
      continue;
    }
    switch (static_cast<DeltaClass>(uflags & kDuClassMask)) {
      case DeltaClass::kU8:
        acc += (*v++) * x[x_idx];
        --usize;
        // Unrolled by 4: the index chain (x_idx += delta) is the loop's
        // serial dependency; resolving four indices before the loads
        // lets the x gathers overlap. Accumulation order is unchanged
        // (one `acc +=` per element, in element order), so results stay
        // bit-identical to the scalar loop and to CSR.
        while (usize >= 4) {
          const std::uint64_t i0 = x_idx + p[0];
          const std::uint64_t i1 = i0 + p[1];
          const std::uint64_t i2 = i1 + p[2];
          const std::uint64_t i3 = i2 + p[3];
          acc += v[0] * x[i0];
          acc += v[1] * x[i1];
          acc += v[2] * x[i2];
          acc += v[3] * x[i3];
          x_idx = i3;
          p += 4;
          v += 4;
          usize -= 4;
        }
        while (usize-- != 0) {
          x_idx += *p++;
          acc += (*v++) * x[x_idx];
        }
        break;
      case DeltaClass::kU16:
        acc += (*v++) * x[x_idx];
        while (--usize != 0) {
          x_idx += load_u16(p);
          p += 2;
          acc += (*v++) * x[x_idx];
        }
        break;
      case DeltaClass::kU32:
        acc += (*v++) * x[x_idx];
        while (--usize != 0) {
          x_idx += load_u32(p);
          p += 4;
          acc += (*v++) * x[x_idx];
        }
        break;
      case DeltaClass::kU64:
        acc += (*v++) * x[x_idx];
        while (--usize != 0) {
          x_idx += load_u64(p);
          p += 8;
          acc += (*v++) * x[x_idx];
        }
        break;
    }
  }
  if (active) {
    y[row] = acc;
  }
  // Trailing empty rows owned by this slice.
  for (std::int64_t r = std::max(row + 1, row_begin);
       r < static_cast<std::int64_t>(s.row_end); ++r) {
    y[r] = 0.0;
  }
}

// Accumulating twin of the slice decoder above, for the column-tiled
// stores (spmv/tiling.hpp): each row's accumulator starts from y[row]
// (the partial left by the previous stripes) instead of 0, and the
// empty-row zeroing is dropped — the tiled caller pre-zeroes its block's
// y rows once. The decode and per-row accumulation order are unchanged,
// so scalar results are bit-identical to the untiled kernel.
void spmv_du_acc(const CsrDu::Slice& s, const value_t* x, value_t* y) {
  const std::uint8_t* p = s.ctl;
  const std::uint8_t* const end = s.ctl_end;
  const value_t* __restrict v = s.values;
  std::int64_t row = s.row_state;
  std::uint64_t x_idx = 0;
  value_t acc = 0.0;
  bool active = false;

  while (p < end) {
    const std::uint8_t uflags = *p++;
    std::uint32_t usize = *p++;
    if (uflags & kDuNewRow) {
      if (active) {
        y[row] = acc;
      }
      std::uint64_t extra = 0;
      if (uflags & kDuRJmp) {
        extra = varint_decode(p);
      }
      row += 1 + static_cast<std::int64_t>(extra);
      x_idx = 0;
      acc = y[row];
      active = true;
    }
    x_idx += varint_decode(p);

    if (uflags & kDuRle) {
      const std::uint64_t stride = varint_decode(p);
      std::uint64_t idx = x_idx;
      for (std::uint32_t k = 0; k < usize; ++k) {
        acc += v[k] * x[idx];
        idx += stride;
      }
      v += usize;
      x_idx = idx - stride;
      continue;
    }
    switch (static_cast<DeltaClass>(uflags & kDuClassMask)) {
      case DeltaClass::kU8:
        acc += (*v++) * x[x_idx];
        --usize;
        while (usize >= 4) {
          const std::uint64_t i0 = x_idx + p[0];
          const std::uint64_t i1 = i0 + p[1];
          const std::uint64_t i2 = i1 + p[2];
          const std::uint64_t i3 = i2 + p[3];
          acc += v[0] * x[i0];
          acc += v[1] * x[i1];
          acc += v[2] * x[i2];
          acc += v[3] * x[i3];
          x_idx = i3;
          p += 4;
          v += 4;
          usize -= 4;
        }
        while (usize-- != 0) {
          x_idx += *p++;
          acc += (*v++) * x[x_idx];
        }
        break;
      case DeltaClass::kU16:
        acc += (*v++) * x[x_idx];
        while (--usize != 0) {
          x_idx += load_u16(p);
          p += 2;
          acc += (*v++) * x[x_idx];
        }
        break;
      case DeltaClass::kU32:
        acc += (*v++) * x[x_idx];
        while (--usize != 0) {
          x_idx += load_u32(p);
          p += 4;
          acc += (*v++) * x[x_idx];
        }
        break;
      case DeltaClass::kU64:
        acc += (*v++) * x[x_idx];
        while (--usize != 0) {
          x_idx += load_u64(p);
          p += 8;
          acc += (*v++) * x[x_idx];
        }
        break;
    }
  }
  if (active) {
    y[row] = acc;
  }
}

void spmv_csr_vi_range(const CsrVi& m, const value_t* x, value_t* y,
                       index_t row_begin, index_t row_end) {
  switch (m.width()) {
    case ViWidth::kU8:
      spmv_csr_vi_range(m.row_ptr().data(), m.col_ind().data(),
                        m.val_ind_raw().data(), m.vals_unique().data(), x, y,
                        row_begin, row_end);
      break;
    case ViWidth::kU16:
      spmv_csr_vi_range(m.row_ptr().data(), m.col_ind().data(),
                        m.val_ind_as<std::uint16_t>(),
                        m.vals_unique().data(), x, y, row_begin, row_end);
      break;
    case ViWidth::kU32:
      spmv_csr_vi_range(m.row_ptr().data(), m.col_ind().data(),
                        m.val_ind_as<std::uint32_t>(),
                        m.vals_unique().data(), x, y, row_begin, row_end);
      break;
  }
}

void spmv(const SymCsr& m, const value_t* x, value_t* y) {
  spmv_sym_csr_win(m.row_ptr().data(), m.col_ind().data(),
                   m.values().data(), m.diag().data(), x, y,
                   /*win=*/nullptr, /*win_begin=*/0, /*direct_begin=*/0, 0,
                   m.nrows());
}

void spmv(const SymCsrVi& m, const value_t* x, value_t* y) {
  switch (m.width()) {
    case ViWidth::kU8:
      spmv_sym_csr_vi_win(m.row_ptr().data(), m.col_ind().data(),
                          m.val_ind_raw().data(), m.diag_ind_raw().data(),
                          m.vals_unique().data(), x, y, /*win=*/nullptr,
                          /*win_begin=*/0, /*direct_begin=*/0, 0, m.nrows());
      break;
    case ViWidth::kU16:
      spmv_sym_csr_vi_win(m.row_ptr().data(), m.col_ind().data(),
                          m.val_ind_as<std::uint16_t>(),
                          m.diag_ind_as<std::uint16_t>(),
                          m.vals_unique().data(), x, y, /*win=*/nullptr,
                          /*win_begin=*/0, /*direct_begin=*/0, 0, m.nrows());
      break;
    case ViWidth::kU32:
      spmv_sym_csr_vi_win(m.row_ptr().data(), m.col_ind().data(),
                          m.val_ind_as<std::uint32_t>(),
                          m.diag_ind_as<std::uint32_t>(),
                          m.vals_unique().data(), x, y, /*win=*/nullptr,
                          /*win_begin=*/0, /*direct_begin=*/0, 0, m.nrows());
      break;
  }
}

namespace {

// Shared DU-VI slice decode, templated on the value-index width.
template <typename IndT>
void spmv_du_vi_impl(const CsrDu::Slice& s,
                     const IndT* __restrict val_ind,
                     const value_t* __restrict uniq, const value_t* x,
                     value_t* y) {
  const std::uint8_t* p = s.ctl;
  const std::uint8_t* const end = s.ctl_end;
  usize_t k = s.val_offset;
  std::int64_t row = s.row_state;
  const std::int64_t row_begin = s.row_begin;
  std::uint64_t x_idx = 0;
  value_t acc = 0.0;
  bool active = false;

  while (p < end) {
    const std::uint8_t uflags = *p++;
    std::uint32_t usize = *p++;
    if (uflags & kDuNewRow) {
      if (active) {
        y[row] = acc;
      }
      std::uint64_t extra = 0;
      if (uflags & kDuRJmp) {
        extra = varint_decode(p);
      }
      for (std::int64_t r = std::max(row + 1, row_begin);
           r < row + 1 + static_cast<std::int64_t>(extra); ++r) {
        y[r] = 0.0;
      }
      row += 1 + static_cast<std::int64_t>(extra);
      x_idx = 0;
      acc = 0.0;
      active = true;
    }
    x_idx += varint_decode(p);

    if (uflags & kDuRle) {
      const std::uint64_t stride = varint_decode(p);
      std::uint64_t idx = x_idx;
      for (std::uint32_t i = 0; i < usize; ++i) {
        acc += uniq[val_ind[k + i]] * x[idx];
        idx += stride;
      }
      k += usize;
      x_idx = idx - stride;
      continue;
    }
    switch (static_cast<DeltaClass>(uflags & kDuClassMask)) {
      case DeltaClass::kU8:
        acc += uniq[val_ind[k++]] * x[x_idx];
        while (--usize != 0) {
          x_idx += *p++;
          acc += uniq[val_ind[k++]] * x[x_idx];
        }
        break;
      case DeltaClass::kU16:
        acc += uniq[val_ind[k++]] * x[x_idx];
        while (--usize != 0) {
          x_idx += load_u16(p);
          p += 2;
          acc += uniq[val_ind[k++]] * x[x_idx];
        }
        break;
      case DeltaClass::kU32:
        acc += uniq[val_ind[k++]] * x[x_idx];
        while (--usize != 0) {
          x_idx += load_u32(p);
          p += 4;
          acc += uniq[val_ind[k++]] * x[x_idx];
        }
        break;
      case DeltaClass::kU64:
        acc += uniq[val_ind[k++]] * x[x_idx];
        while (--usize != 0) {
          x_idx += load_u64(p);
          p += 8;
          acc += uniq[val_ind[k++]] * x[x_idx];
        }
        break;
    }
  }
  if (active) {
    y[row] = acc;
  }
  for (std::int64_t r = std::max(row + 1, row_begin);
       r < static_cast<std::int64_t>(s.row_end); ++r) {
    y[r] = 0.0;
  }
}

// Accumulating twin of spmv_du_vi_impl for the column-tiled stores —
// same contract as spmv_du_acc above.
template <typename IndT>
void spmv_du_vi_acc_impl(const CsrDu::Slice& s,
                         const IndT* __restrict val_ind,
                         const value_t* __restrict uniq, const value_t* x,
                         value_t* y) {
  const std::uint8_t* p = s.ctl;
  const std::uint8_t* const end = s.ctl_end;
  usize_t k = s.val_offset;
  std::int64_t row = s.row_state;
  std::uint64_t x_idx = 0;
  value_t acc = 0.0;
  bool active = false;

  while (p < end) {
    const std::uint8_t uflags = *p++;
    std::uint32_t usize = *p++;
    if (uflags & kDuNewRow) {
      if (active) {
        y[row] = acc;
      }
      std::uint64_t extra = 0;
      if (uflags & kDuRJmp) {
        extra = varint_decode(p);
      }
      row += 1 + static_cast<std::int64_t>(extra);
      x_idx = 0;
      acc = y[row];
      active = true;
    }
    x_idx += varint_decode(p);

    if (uflags & kDuRle) {
      const std::uint64_t stride = varint_decode(p);
      std::uint64_t idx = x_idx;
      for (std::uint32_t i = 0; i < usize; ++i) {
        acc += uniq[val_ind[k + i]] * x[idx];
        idx += stride;
      }
      k += usize;
      x_idx = idx - stride;
      continue;
    }
    switch (static_cast<DeltaClass>(uflags & kDuClassMask)) {
      case DeltaClass::kU8:
        acc += uniq[val_ind[k++]] * x[x_idx];
        while (--usize != 0) {
          x_idx += *p++;
          acc += uniq[val_ind[k++]] * x[x_idx];
        }
        break;
      case DeltaClass::kU16:
        acc += uniq[val_ind[k++]] * x[x_idx];
        while (--usize != 0) {
          x_idx += load_u16(p);
          p += 2;
          acc += uniq[val_ind[k++]] * x[x_idx];
        }
        break;
      case DeltaClass::kU32:
        acc += uniq[val_ind[k++]] * x[x_idx];
        while (--usize != 0) {
          x_idx += load_u32(p);
          p += 4;
          acc += uniq[val_ind[k++]] * x[x_idx];
        }
        break;
      case DeltaClass::kU64:
        acc += uniq[val_ind[k++]] * x[x_idx];
        while (--usize != 0) {
          x_idx += load_u64(p);
          p += 8;
          acc += uniq[val_ind[k++]] * x[x_idx];
        }
        break;
    }
  }
  if (active) {
    y[row] = acc;
  }
}

}  // namespace

void spmv_du_vi_acc_slice(const CsrDu::Slice& s,
                          const std::uint8_t* val_ind,
                          const value_t* vals_unique, const value_t* x,
                          value_t* y) {
  spmv_du_vi_acc_impl(s, val_ind, vals_unique, x, y);
}

void spmv_du_vi_acc_slice(const CsrDu::Slice& s,
                          const std::uint16_t* val_ind,
                          const value_t* vals_unique, const value_t* x,
                          value_t* y) {
  spmv_du_vi_acc_impl(s, val_ind, vals_unique, x, y);
}

void spmv_du_vi_acc_slice(const CsrDu::Slice& s,
                          const std::uint32_t* val_ind,
                          const value_t* vals_unique, const value_t* x,
                          value_t* y) {
  spmv_du_vi_acc_impl(s, val_ind, vals_unique, x, y);
}

void spmv_du_vi_slice(const CsrDu::Slice& s, const std::uint8_t* val_ind,
                      const value_t* vals_unique, const value_t* x,
                      value_t* y) {
  spmv_du_vi_impl(s, val_ind, vals_unique, x, y);
}

void spmv_du_vi_slice(const CsrDu::Slice& s, const std::uint16_t* val_ind,
                      const value_t* vals_unique, const value_t* x,
                      value_t* y) {
  spmv_du_vi_impl(s, val_ind, vals_unique, x, y);
}

void spmv_du_vi_slice(const CsrDu::Slice& s, const std::uint32_t* val_ind,
                      const value_t* vals_unique, const value_t* x,
                      value_t* y) {
  spmv_du_vi_impl(s, val_ind, vals_unique, x, y);
}

void spmv(const CsrDuVi& m, const CsrDu::Slice& s, const value_t* x,
          value_t* y) {
  switch (m.width()) {
    case ViWidth::kU8:
      spmv_du_vi_slice(s, m.val_ind_raw().data(), m.vals_unique().data(),
                       x, y);
      break;
    case ViWidth::kU16:
      spmv_du_vi_slice(s, m.val_ind_as<std::uint16_t>(),
                       m.vals_unique().data(), x, y);
      break;
    case ViWidth::kU32:
      spmv_du_vi_slice(s, m.val_ind_as<std::uint32_t>(),
                       m.vals_unique().data(), x, y);
      break;
  }
}

void spmv(const Dcsr::Slice& s, const value_t* x, value_t* y) {
  const std::uint8_t* p = s.cmds;
  const std::uint8_t* const end = s.cmds_end;
  const value_t* __restrict v = s.values;
  std::int64_t row = s.row_state;
  const std::int64_t row_begin = s.row_begin;
  std::uint64_t x_idx = 0;
  value_t acc = 0.0;
  bool active = false;

  while (p < end) {
    const std::uint8_t cmd = *p++;
    const std::uint8_t op = cmd >> 6;
    const std::uint8_t arg = cmd & 0x3F;
    switch (op) {
      case kDcsrOpDeltas8:
        for (std::uint8_t i = 0; i < arg; ++i) {
          x_idx += *p++;
          acc += (*v++) * x[x_idx];
        }
        break;
      case kDcsrOpDelta16:
        x_idx += load_u16(p);
        p += 2;
        acc += (*v++) * x[x_idx];
        break;
      case kDcsrOpDelta32:
        x_idx += load_u32(p);
        p += 4;
        acc += (*v++) * x[x_idx];
        break;
      case kDcsrOpNewRow: {
        if (active) {
          y[row] = acc;
          active = false;
        }
        // arg-1 of the advanced rows are empty; zero the owned ones.
        // (Chained NEWROWs make every advanced row except the final one
        // empty, which this handles per command.)
        for (std::int64_t r = std::max(row + 1, row_begin);
             r < row + arg; ++r) {
          y[r] = 0.0;
        }
        row += arg;
        x_idx = 0;
        acc = 0.0;
        active = true;
        break;
      }
    }
  }
  if (active) {
    y[row] = acc;
  }
  for (std::int64_t r = std::max(row + 1, row_begin);
       r < static_cast<std::int64_t>(s.row_end); ++r) {
    y[r] = 0.0;
  }
}

}  // namespace spc
