// SpmvInstance — a matrix prepared for repeated y = A*x execution in a
// chosen storage format with a chosen thread count.
//
// This is the main user-facing entry point of the library: it bundles the
// encoded matrix, the nnz-balanced row partition, the per-thread format
// slices, and the pinned thread pool, so that `run(x, y)` measures exactly
// what the paper measures — the kernel, with all setup out of the timed
// region.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <variant>
#include <vector>

#include "spc/formats/bcsr.hpp"
#include "spc/formats/coo.hpp"
#include "spc/formats/csc.hpp"
#include "spc/formats/csr.hpp"
#include "spc/formats/csr_du.hpp"
#include "spc/formats/csr_du_vi.hpp"
#include "spc/formats/csr_vi.hpp"
#include "spc/formats/dcsr.hpp"
#include "spc/formats/dia.hpp"
#include "spc/formats/ell.hpp"
#include "spc/formats/jds.hpp"
#include "spc/formats/sym_csr.hpp"
#include "spc/formats/sym_csr_vi.hpp"
#include "spc/mm/triplets.hpp"
#include "spc/mm/vector.hpp"
#include "spc/obs/metrics.hpp"
#include "spc/parallel/chunk_queue.hpp"
#include "spc/parallel/kernel_binding.hpp"
#include "spc/parallel/partition.hpp"
#include "spc/parallel/schedule.hpp"
#include "spc/parallel/thread_pool.hpp"
#include "spc/spmv/dispatch.hpp"
#include "spc/spmv/sym_spmv.hpp"
#include "spc/spmv/tiling.hpp"
#include "spc/support/first_touch.hpp"
#include "spc/support/status.hpp"

namespace spc {

/// Storage formats selectable by name.
enum class Format {
  kCsr,       ///< baseline CSR, 32-bit indices (paper baseline)
  kCsr16,     ///< CSR with 16-bit column indices (needs ncols <= 2^16)
  kCoo,       ///< coordinate format (serial only)
  kCsc,       ///< compressed sparse column (column-partitioned when MT)
  kBcsr,      ///< blocked CSR, block shape from InstanceOptions
  kEll,       ///< ELLPACK fixed-width rows (§III-A baseline)
  kDia,       ///< compressed diagonal storage (§III-A baseline)
  kJds,       ///< jagged diagonal storage (§III-A baseline)
  kCsrDu,     ///< CSR-DU index compression (the paper's §IV)
  kCsrDuRle,  ///< CSR-DU with the RLE1 dense-run extension enabled
  kCsrVi,     ///< CSR-VI value compression (the paper's §V)
  kCsrDuVi,   ///< combined index+value compression
  kDcsr,      ///< simplified Willcock–Lumsdaine comparator
  kSymCsr,    ///< symmetric SSS storage (§III-C), conflict-window MT
  kSymCsrVi,  ///< symmetric storage + value compression (§III-C + §V)
};

/// Canonical lower-case name ("csr-du", "csr-vi", ...).
std::string format_name(Format f);

/// Parses a format name; throws InvalidArgument on unknown names.
Format parse_format(const std::string& name);

/// All formats in presentation order.
const std::vector<Format>& all_formats();

/// True for the symmetric formats, whose encoders refuse matrices that
/// are not numerically symmetric — callers iterating all_formats()
/// should pair this with SymCsr::applicable().
bool format_requires_symmetry(Format f);

/// Multithreaded execution backend.
enum class Backend {
  kPool,    ///< persistent pinned thread pool (the paper's pthread model)
  kOpenMP,  ///< OpenMP parallel region (thread binding via OMP_PROC_BIND);
            ///< falls back to kPool when built without OpenMP
};

struct InstanceOptions {
  CsrDuOptions du;                 ///< encoder knobs for the DU formats
  index_t bcsr_block_rows = 2;     ///< BCSR block shape
  index_t bcsr_block_cols = 2;
  /// Construction guards against pathological blowup (0 = unguarded):
  /// ELL refuses a width beyond this factor of the mean row length, DIA
  /// refuses more than this many distinct diagonals.
  double ell_max_width_factor = 0.0;
  std::size_t dia_max_diags = 0;
  bool pin_threads = true;         ///< bind workers per the placement plan
  Placement placement = Placement::kCloseFirst;
  /// Partition rows by nnz (paper's scheme); false = equal row counts.
  bool balance_by_nnz = true;
  Backend backend = Backend::kPool;
  /// NUMA data placement (overridable via SPC_NUMA): kAuto repacks
  /// per-thread slices on multi-node machines and stays off on flat
  /// ones. See support/first_touch.hpp.
  NumaPolicy numa = NumaPolicy::kAuto;
  /// Work scheduling (overridable via SPC_SCHED): kStatic is the
  /// paper's one-range-per-worker model (zero-overhead default);
  /// kChunked/kSteal run the row-partitioned formats as cache-sized
  /// chunks, with kSteal letting idle workers steal from NUMA-near
  /// victims. Non-static requests silently fall back to static for
  /// unsupported formats, the OpenMP backend, and serial instances.
  Schedule schedule = Schedule::kStatic;
  /// Target non-zeros per chunk for the dynamic schedules; 0 derives it
  /// from the discovered L2 size (parallel/schedule.hpp). SPC_CHUNK_NNZ
  /// overrides either.
  usize_t chunk_nnz = 0;
  /// Column tiling (overridable via SPC_TILE): kAuto stripes the CSR /
  /// CSR-VI / CSR-DU(-VI) stores into ~L1d-wide column tiles when the
  /// matrix's x working set and row spans make it profitable, and stays
  /// off (zero overhead) otherwise. See spmv/tiling.hpp.
  TileConfig tiling;
  /// Conflict-reduction strategy for the symmetric formats (overridable
  /// via SPC_SYM_REDUCE): kAuto uses the bounded conflict windows unless
  /// the plan degenerates toward full-length windows, where the classic
  /// private-y path is cheaper. See spmv/sym_spmv.hpp.
  SymReduce sym_reduce = SymReduce::kAuto;

  /// Checks the option values themselves (not their fit to a matrix):
  /// block shapes at least 1x1, finite non-negative guard factors, a
  /// forced tile stripe with a nonzero width.
  /// Returns ok() or an kInvalidArgument status naming the bad field and
  /// value. The SpmvInstance constructor calls this and throws
  /// InvalidArgument with the same message on failure.
  Status validate() const;
};

/// One configuration aspect the instance resolved differently from what
/// was requested (including env-var overrides), with the reason — e.g. a
/// steal schedule demoted to chunked for a symmetric format, an auto
/// tile plan that declined, NUMA placement off because workers are
/// unpinned. Silent-at-run-time fallbacks stay queryable this way.
struct InstanceDecision {
  std::string aspect;     ///< "backend" | "schedule" | "tiling" | "numa" | "isa"
  std::string requested;  ///< what the options/env asked for
  std::string resolved;   ///< what actually runs
  std::string reason;
};

/// True when the library was compiled with OpenMP support.
bool openmp_available();

class SpmvInstance {
 public:
  /// Encodes `t` into `format` and prepares `nthreads`-way execution.
  /// nthreads == 1 runs on the calling thread (the paper's serial case).
  SpmvInstance(const Triplets& t, Format format, std::size_t nthreads = 1,
               const InstanceOptions& opts = {});

  /// Shared-pool form: prepares pool->size()-way execution on a pool the
  /// caller owns (and may lend to many instances — the serving engine's
  /// model). The instance serializes its own runs internally, so several
  /// threads may call run() on instances sharing one pool concurrently;
  /// opts.backend/pin_threads/placement are ignored (the pool is already
  /// built). NUMA placement engages only when the pool's workers are
  /// pinned. The pool must outlive the instance — the shared_ptr
  /// enforces that.
  SpmvInstance(const Triplets& t, Format format,
               std::shared_ptr<ThreadPool> pool,
               const InstanceOptions& opts = {});

  ~SpmvInstance();
  SpmvInstance(SpmvInstance&&) noexcept;
  SpmvInstance& operator=(SpmvInstance&&) noexcept = delete;

  Format format() const { return format_; }
  std::size_t nthreads() const { return nthreads_; }
  index_t nrows() const { return nrows_; }
  index_t ncols() const { return ncols_; }
  usize_t nnz() const { return nnz_; }

  /// Size of the encoded matrix data (for compression-ratio reporting).
  usize_t matrix_bytes() const;

  /// Computes y = A*x. x must have ncols elements, y nrows elements.
  /// Thread-safe on shared-pool instances (runs serialize internally);
  /// instances owning their pool keep the zero-overhead unlocked path
  /// and must not be run from two threads at once.
  void run(const Vector& x, Vector& y);

  /// True when run_on_caller() can execute this instance: a serial
  /// kernel is bound and computes bit-identically to the pooled run.
  /// False for the two-phase paths (symmetric scatter/reduce, CSC,
  /// DIA/JDS/COO) and for tiled instances under NUMA placement (the
  /// serial binding reads one worker's arena copy).
  bool can_run_on_caller() const;

  /// Degraded-mode execution: computes y = A*x entirely on the calling
  /// thread, without touching the pool — the serving engine's fallback
  /// when the shared pool is saturated. Needs no run() serialization
  /// (reads only the immutable prepared arrays, writes only `y`).
  /// Returns false without computing when can_run_on_caller() is false.
  bool run_on_caller(const Vector& x, Vector& y);

  /// Every configuration aspect resolved away from its requested value
  /// (backend/schedule/tiling/numa/isa fallbacks), in resolution order.
  /// Empty when everything runs exactly as asked.
  const std::vector<InstanceDecision>& decisions() const {
    return decisions_;
  }

  /// One-time per-tier setup, called by the constructor: resolves the
  /// active ISA tier (CPUID + SPC_ISA override), scans the DU unit-class
  /// histogram to choose the decode strategy, and binds the per-thread
  /// kernels — everything that must stay off the timed path. Idempotent;
  /// call again to rebind after changing SPC_ISA.
  void prepare();

  /// The ISA tier the bound kernels execute at (recorded into the JSONL
  /// metrics as "isa").
  IsaTier isa_tier() const { return tier_; }

  /// Unit-class histogram of the ctl stream for DU-based formats;
  /// nullptr for every other format.
  const CsrDu::UnitHistogram* du_histogram() const {
    return has_du_hist_ ? &du_hist_ : nullptr;
  }

  /// The partition in use (empty bounds for serial-only formats).
  const RowPartition& partition() const { return partition_; }

  /// The worker pool executing this instance — owned or borrowed
  /// (nullptr for serial instances and the OpenMP backend). The bench
  /// harness uses it to read busy-time imbalance and drive hardware
  /// counters.
  ThreadPool* pool() const { return xpool_; }

  /// True when the pool was lent by the caller (the shared-pool
  /// constructor) rather than built by this instance.
  bool pool_is_shared() const { return shared_pool_ != nullptr; }

  /// The data-placement policy actually in effect: the resolved value of
  /// opts.numa / SPC_NUMA, or kOff when the format, backend, or thread
  /// count rules placement out. Recorded into the JSONL metrics as
  /// "numa".
  NumaPolicy numa_policy() const { return numa_policy_; }

  /// NUMA node each worker's pin target lives on (empty when placement
  /// is off).
  const std::vector<int>& thread_nodes() const { return thread_node_; }

  /// Best-effort page-residency summary of the repacked matrix blocks,
  /// via the move_pages(2) query form. `available` is false (with a
  /// reason) when placement is off or the kernel refuses the query —
  /// never an error.
  struct NumaResidency {
    bool available = false;
    std::string reason;
    usize_t pages_sampled = 0;
    usize_t pages_local = 0;  ///< resident on the owning worker's node
  };
  NumaResidency matrix_residency() const;

  /// The schedule actually in effect: the resolved value of
  /// opts.schedule / SPC_SCHED, or kStatic when the format, backend, or
  /// thread count rules dynamic scheduling out. Recorded into the JSONL
  /// metrics as "schedule".
  Schedule schedule() const { return sched_; }

  /// Number of chunks in the active chunk plan (0 under static).
  std::size_t sched_chunks() const { return chunk_plan_.nchunks(); }

  /// Chunks executed by worker `t` since the last sched_reset().
  std::uint64_t sched_executed(std::size_t t) const {
    return t < sched_slots_.size() ? sched_slots_[t].executed : 0;
  }

  /// Chunks worker `t` stole from other workers' deques.
  std::uint64_t sched_stolen(std::size_t t) const {
    return t < sched_slots_.size() ? sched_slots_[t].stolen : 0;
  }

  /// Total steals across all workers since the last sched_reset().
  std::uint64_t sched_steals_total() const;

  /// Zeroes the per-worker executed/stolen chunk counts (the bench
  /// harness calls this next to ThreadPool::busy_reset() so the timed
  /// loop's counts exclude warmup).
  void sched_reset();

  /// True when the column-tiled execution path is bound (the resolved
  /// opts.tiling / SPC_TILE engaged for this matrix). Recorded into the
  /// JSONL metrics as "tiling" / "stripe_bytes".
  bool tiling_active() const { return tiled_; }

  /// The resolved tiling decision (decline_reason says why an auto
  /// request stayed untiled).
  const TilePlan& tile_plan() const { return tile_plan_; }

  /// Stripe width in bytes of x covered (0 when untiled).
  std::size_t tile_stripe_bytes() const {
    return tiled_ ? tile_plan_.stripe_bytes : 0;
  }

  /// Number of column stripes (0 when untiled).
  index_t tile_stripes() const { return tiled_ ? tile_plan_.nstripes : 0; }

  /// True when a symmetric format's scatter/reduce execution path is
  /// active (multithreaded pool runs of kSymCsr / kSymCsrVi).
  bool sym_active() const { return sym_active_; }

  /// The conflict-reduction strategy actually in effect (kWindow or
  /// kPrivate; kAuto never survives resolution). Meaningful only when
  /// sym_active(). Recorded into the JSONL metrics as "sym_reduce".
  SymReduce sym_reduce() const { return sym_reduce_; }

  /// Total conflict-window rows across threads (0 in private mode).
  usize_t sym_window_rows() const {
    return sym_active_ && sym_reduce_ == SymReduce::kWindow
               ? sym_plan_.total_rows
               : 0;
  }

  /// Reduction traffic relative to the private-y sweep's nthreads*nrows:
  /// the window span fraction under kWindow, 1.0 under kPrivate, 0.0
  /// when no symmetric reduction runs at all.
  double sym_window_frac() const;

  /// Nanoseconds of reduction-phase wall time accumulated since the last
  /// sym_reset() (summed over runs; 0 when the reduction is skipped).
  std::uint64_t sym_reduce_ns_total() const { return sym_reduce_ns_; }

  /// Zeroes the reduction-phase timer (the bench harness calls this next
  /// to sched_reset() so the timed loop's figure excludes warmup).
  void sym_reset() { sym_reduce_ns_ = 0; }

  /// How this instance's configuration was chosen. Hand-constructed
  /// instances carry the default (tuned == false); spc::tune stamps the
  /// instances it returns so the bench harness can record the tuning
  /// provenance (tuned / cache_hit / probe_ns / source) into the JSONL
  /// metrics without depending on the tuner.
  struct TuneProvenance {
    bool tuned = false;
    bool cache_hit = false;       ///< winner came from the tuning cache
    std::uint64_t probe_ns = 0;   ///< wall time spent probing (0 on hit)
    std::string source;           ///< "cache" | "probe" | "cost-model"
    std::string fingerprint;      ///< matrix content hash (16-hex)
  };
  const TuneProvenance& tune_provenance() const { return tune_; }
  void set_tune_provenance(TuneProvenance p) { tune_ = std::move(p); }

  /// Probe hook for the autotuner: one y = A*x pass under the wall
  /// clock, returning its duration in nanoseconds. Identical work to
  /// run(); the instance-side timestamping keeps every candidate's
  /// measurement loop the same few instructions regardless of caller.
  std::uint64_t run_probe(const Vector& x, Vector& y);

 private:
  /// Shared constructor body: validates options, encodes, partitions,
  /// builds or borrows the pool, resolves schedule/tiling/NUMA, binds.
  /// Expects format_/nthreads_/opts_ (and shared_pool_, when borrowing)
  /// already set.
  void init(const Triplets& t);
  /// Records a requested-vs-resolved configuration fallback for
  /// decisions(). Idempotent per (aspect, resolved, reason) so the
  /// re-callable prepare() never duplicates entries.
  void note_decision(const std::string& aspect, const std::string& requested,
                     const std::string& resolved, const std::string& reason);
  void run_serial(const value_t* x, value_t* y);
  void run_parallel(const Vector& x, Vector& y);
  /// The run()/run_probe() execution body (serial-vs-parallel split),
  /// under the run mutex when this instance shares its pool.
  void run_locked(const Vector& x, Vector& y);
  /// Runs body(tid) on every worker via the configured backend.
  void dispatch(const std::function<void(std::size_t)>& body);
  /// Pool-only raw dispatch for the scheduler executors (ctx = this).
  void dispatch_raw(ThreadPool::RawJob fn);
  /// Resolves opts.schedule / SPC_SCHED and, when a dynamic schedule is
  /// active, builds the chunk plan, the per-worker deques, and the
  /// NUMA-near victim order. Called by the constructor after the pool
  /// exists and *before* setup_numa (the DU chunk slices are computed
  /// against the pristine ctl stream; setup_numa translates them into
  /// each owner's arena block). `t` supplies the per-row nnz counts the
  /// planner needs for formats without a row_ptr (the DU family, ELL).
  void setup_schedule(const Triplets& t, const Topology& topo);
  /// Resolves the NUMA policy and, when active, repacks every worker's
  /// matrix slice into a first-touched arena block (plus the x mirrors
  /// the replicate/interleave policies need). Called by the constructor
  /// after the pinned pool exists and before prepare().
  void setup_numa(const Topology& topo);
  /// Resolves opts.tiling / SPC_TILE and, when the plan engages, builds
  /// the stripe-major tiled store over the execution blocks (the chunk
  /// plan's chunks under dynamic schedules, the partition's ranges under
  /// static). Called after setup_schedule and before setup_numa, which
  /// repacks the tiled arrays instead of the matrix's when tiled_.
  void setup_tiling(const Triplets& t);
  /// Binds the tiled execution closures (called by prepare() in place of
  /// the per-format binding when tiled_).
  void bind_tiled(const KernelTable& kt);

  Format format_;
  std::size_t nthreads_;
  index_t nrows_ = 0;
  index_t ncols_ = 0;
  usize_t nnz_ = 0;
  InstanceOptions opts_;

  std::variant<Csr, Csr16, Coo, Csc, Bcsr, Ell, Dia, Jds, CsrDu, CsrVi,
               CsrDuVi, Dcsr, SymCsr, SymCsrVi>
      matrix_;
  RowPartition partition_;               ///< row ranges (or column ranges for CSC)
  std::vector<CsrDu::Slice> du_slices_;  ///< per-thread DU slices
  std::vector<Dcsr::Slice> dcsr_slices_;
  /// Per-thread private y for CSC and for the symmetric formats'
  /// private-y fallback mode.
  std::vector<Vector> csc_scratch_;
  std::unique_ptr<ThreadPool> pool_;    ///< owned pool (classic ctor)
  std::shared_ptr<ThreadPool> shared_pool_;  ///< borrowed pool (engine)
  /// The pool runs execute on: pool_.get(), shared_pool_.get(), or
  /// nullptr (serial / OpenMP backend).
  ThreadPool* xpool_ = nullptr;
  /// Serializes run()/run_probe() on shared-pool instances, so several
  /// engine dispatchers may drive one matrix concurrently. Heap-held
  /// (allocated only when sharing) to keep the defaulted move ctor.
  std::unique_ptr<std::mutex> run_mu_;
  std::vector<InstanceDecision> decisions_;
  // Prepared by prepare(): dispatch tier, bound kernels, and per-format
  // precomputation that would otherwise sit on the timed path.
  IsaTier tier_ = IsaTier::kScalar;
  KernelBinding binding_;
  CsrDu::UnitHistogram du_hist_;
  bool has_du_hist_ = false;
  RowPartition csc_reduce_rows_;  ///< reduce-phase row split for CSC
  // NUMA placement (set up once by setup_numa, off the timed path): the
  // resolved policy, each worker's node, the arena holding the repacked
  // per-thread slices and x mirrors, and the pointers prepare() rebinds
  // the per-thread kernels against.
  NumaPolicy numa_policy_ = NumaPolicy::kOff;
  std::vector<int> thread_node_;
  std::unique_ptr<FirstTouchArena> arena_;
  /// Per-thread repacked array pointers. row_ptr/col_ind/values are
  /// rebased or 0-based per format so the unchanged kernels index them
  /// with the same absolute positions as the shared arrays.
  struct NumaSlice {
    const index_t* row_ptr = nullptr;
    const void* col_ind = nullptr;  ///< element type is per-format
    const value_t* values = nullptr;
    const void* val_ind = nullptr;  ///< CSR-VI / CSR-DU-VI value indices
    /// Symmetric formats: the rebased diagonal (value_t for sym-csr,
    /// width-typed diag indices for sym-csr-vi).
    const void* diag = nullptr;
  };
  std::vector<NumaSlice> numa_slices_;
  std::vector<const value_t*> numa_x_ptr_;  ///< per-thread x replica
  /// Per-thread refresh jobs run before the kernels each run() when x
  /// mirrors exist: worker t copies its chunk of the user x into the
  /// node-local mirror pages.
  std::vector<std::function<void(const value_t*)>> numa_x_copy_;
  // Cached metrics-registry handles (lookup once here, lock-free in run).
  obs::Counter* runs_counter_ = nullptr;
  obs::LatencyHisto* run_histo_ = nullptr;
  // Column tiling (set up once by setup_tiling, off the timed path): the
  // resolved plan, the stripe-major store that replaces the matrix's
  // execution arrays, which worker owns each block, the per-tile DU
  // slices (DU family; rewritten in place by the NUMA repack), and the
  // per-worker array pointers the tiled closures read (shared store by
  // default, arena copies under NUMA).
  TilePlan tile_plan_;
  TiledStore tile_store_;
  bool tiled_ = false;
  std::vector<std::uint32_t> tile_block_owner_;  ///< one per block
  std::vector<CsrDu::Slice> tile_du_slices_;     ///< one per tile
  struct TileArrays {
    const index_t* seg_ptr = nullptr;  ///< rebased: index with absolute seg
    const index_t* seg_row = nullptr;
    const std::uint32_t* col = nullptr;  ///< 0-based within the worker span
    const value_t* val = nullptr;
    const void* vi = nullptr;
  };
  std::vector<TileArrays> tile_arrays_;  ///< one per worker
  // Dynamic scheduling (set up once by setup_schedule, off the timed
  // path): the resolved schedule, the row-aligned chunk plan, per-chunk
  // DU slices (DU formats only), one deque of owned chunks per worker,
  // and each worker's NUMA-near-first victim order.
  Schedule sched_ = Schedule::kStatic;
  ChunkPlan chunk_plan_;
  std::vector<CsrDu::Slice> du_chunk_slices_;  ///< one per chunk
  std::vector<ChunkDeque> deques_;             ///< one per worker
  std::vector<std::vector<std::uint32_t>> steal_victims_;
  /// Per-worker chunk counters, cache-line padded; written only by the
  /// owning worker during a run, read after the pool handshake.
  struct alignas(kCacheLineBytes) SchedSlot {
    std::uint64_t executed = 0;
    std::uint64_t stolen = 0;
  };
  std::vector<SchedSlot> sched_slots_;
  obs::Counter* sched_steals_counter_ = nullptr;
  /// The current run's vectors, published to the static executor jobs
  /// before dispatch_raw (pool handshake orders the accesses).
  struct RunArgs {
    const value_t* x = nullptr;
    value_t* y = nullptr;
  };
  RunArgs run_args_;
  // Symmetric conflict-window execution (kSymCsr / kSymCsrVi, pool
  // backend): the resolved reduction strategy, the per-thread window
  // plan, the window buffers (arena-backed under NUMA, heap otherwise;
  // private mode reuses csc_scratch_), and the reduction-phase timer.
  bool sym_active_ = false;
  SymReduce sym_reduce_ = SymReduce::kWindow;
  SymWindowPlan sym_plan_;
  std::vector<Vector> sym_win_store_;
  std::vector<value_t*> sym_win_ptr_;  ///< one per worker
  std::uint64_t sym_reduce_ns_ = 0;
  obs::Counter* sym_reduce_counter_ = nullptr;
  TuneProvenance tune_;
  /// Static executor jobs for dispatch_raw (ctx = the instance). The
  /// raw-callable path keeps the per-run cost at one function-pointer
  /// call per worker — no std::function allocation on the timed path.
  static void static_job(void* ctx, std::size_t tid);
  static void chunked_job(void* ctx, std::size_t tid);
  static void steal_job(void* ctx, std::size_t tid);
  static void xcopy_job(void* ctx, std::size_t tid);
  /// Symmetric-path executors: the compute job zeroes the worker's
  /// window (or private scratch) then runs its rows — statically or as
  /// its owned chunks under kChunked; the reduce job folds the
  /// overlapping windows (or sums the private copies) into y.
  static void sym_compute_job(void* ctx, std::size_t tid);
  static void sym_reduce_job(void* ctx, std::size_t tid);
  /// The x pointer worker `th` should read (its NUMA replica when the
  /// replicate policy is active, the caller's x otherwise).
  const value_t* worker_x(std::size_t th) const {
    return numa_x_ptr_.empty() ? run_args_.x : numa_x_ptr_[th];
  }
};

/// One-shot convenience: y = A*x via CSR on the calling thread.
Vector spmv_simple(const Triplets& t, const Vector& x);

}  // namespace spc
