// Scalar dispatch tier: the portable kernels from kernels.hpp, compiled
// with the project's base flags. This table is the floor every other tier
// falls back to, and the oracle for the dispatch fuzz test — its entries
// keep the exact arithmetic order of the pre-dispatch code, so forcing
// SPC_ISA=scalar reproduces those results bit-for-bit.
#include "spc/spmv/dispatch_tables.hpp"
#include "spc/spmv/kernels.hpp"

namespace spc::detail {

namespace {

void du_scalar(const CsrDu::Slice& s, const value_t* x, value_t* y) {
  spmv(s, x, y);
}

template <typename IndT>
void du_vi_scalar(const CsrDu::Slice& s, const IndT* val_ind,
                  const value_t* vals_unique, const value_t* x, value_t* y) {
  spmv_du_vi_slice(s, val_ind, vals_unique, x, y);
}

void du_acc_scalar(const CsrDu::Slice& s, const value_t* x, value_t* y) {
  spmv_du_acc(s, x, y);
}

template <typename IndT>
void du_vi_acc_scalar(const CsrDu::Slice& s, const IndT* val_ind,
                      const value_t* vals_unique, const value_t* x,
                      value_t* y) {
  spmv_du_vi_acc_slice(s, val_ind, vals_unique, x, y);
}

}  // namespace

const KernelTable& scalar_table() {
  static const KernelTable table = [] {
    KernelTable t;
    t.tier = IsaTier::kScalar;
    t.csr = &spmv_csr_raw<std::uint32_t>;
    t.csr16 = &spmv_csr_raw<std::uint16_t>;
    t.csr_vi_u8 = &spmv_csr_vi_range<std::uint8_t>;
    t.csr_vi_u16 = &spmv_csr_vi_range<std::uint16_t>;
    t.csr_vi_u32 = &spmv_csr_vi_range<std::uint32_t>;
    t.du = &du_scalar;
    t.du_vi_u8 = &du_vi_scalar<std::uint8_t>;
    t.du_vi_u16 = &du_vi_scalar<std::uint16_t>;
    t.du_vi_u32 = &du_vi_scalar<std::uint32_t>;
    t.csr_seg = &spmv_csr_seg_acc;
    t.csr_vi_seg_u8 = &spmv_csr_vi_seg_acc<std::uint8_t>;
    t.csr_vi_seg_u16 = &spmv_csr_vi_seg_acc<std::uint16_t>;
    t.csr_vi_seg_u32 = &spmv_csr_vi_seg_acc<std::uint32_t>;
    t.du_acc = &du_acc_scalar;
    t.du_vi_acc_u8 = &du_vi_acc_scalar<std::uint8_t>;
    t.du_vi_acc_u16 = &du_vi_acc_scalar<std::uint16_t>;
    t.du_vi_acc_u32 = &du_vi_acc_scalar<std::uint32_t>;
    t.sym_csr = &spmv_sym_csr_win;
    t.sym_csr_vi_u8 = &spmv_sym_csr_vi_win<std::uint8_t>;
    t.sym_csr_vi_u16 = &spmv_sym_csr_vi_win<std::uint16_t>;
    t.sym_csr_vi_u32 = &spmv_sym_csr_vi_win<std::uint32_t>;
    return t;
  }();
  return table;
}

}  // namespace spc::detail
