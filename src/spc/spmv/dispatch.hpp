// Runtime ISA dispatch for the SpMV hot-path kernels.
//
// The paper's compressed formats shrink the working set; what remains is
// compute on the decode/multiply loops. This layer provides vectorized
// implementations of those loops in per-ISA translation units (compiled
// with per-file -march flags, see src/spc/spmv/CMakeLists.txt) and picks
// the widest one the *running* CPU supports, so a single binary runs
// everywhere and uses AVX2+FMA where it exists.
//
// Tiers:
//   scalar — the portable kernels from kernels.hpp, compiled with the
//            project's base flags. Always available; forcing this tier
//            (SPC_ISA=scalar) reproduces pre-dispatch results bit-for-bit
//            because the arithmetic order is untouched.
//   sse42  — 128-bit (2-wide) mul/add kernels for CSR / CSR-16 / CSR-VI.
//            The DU entries fall through to scalar (SSE has no gather;
//            the scalar DU loop's 4-deep index-chain unroll is already
//            near its port limit).
//   avx2   — 256-bit (4-wide) FMA kernels with vgatherdpd x-gathers for
//            CSR / CSR-16 / CSR-VI, and specialized CSR-DU / CSR-DU-VI
//            decoders: stride-1 RLE units become contiguous vector
//            loads, strided RLE units 64-bit gathers, delta units
//            resolve four indices ahead and gather; the varint header
//            path stays scalar. Vector accumulation reassociates the
//            per-row sum (one vector lane partial each), so results can
//            differ from scalar by normal FP reassociation error.
//
// Selection: active_isa_tier() = min(detected tier, SPC_ISA override).
// The override can only lower the tier — requesting a wider ISA than the
// host supports clamps down, never faults.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "spc/formats/csr_du.hpp"
#include "spc/support/types.hpp"

namespace spc {

/// Instruction-set tiers, ordered: a higher tier strictly implies the
/// lower ones.
enum class IsaTier : std::uint8_t { kScalar = 0, kSse42 = 1, kAvx2 = 2 };

/// Canonical lower-case name ("scalar", "sse42", "avx2").
std::string isa_tier_name(IsaTier t);

/// Parses a tier name (also accepts "sse4.2"); returns false on unknown
/// names, leaving *out untouched.
bool parse_isa_tier(const std::string& name, IsaTier* out);

/// The widest tier whose translation unit was compiled into this binary
/// (build-machine property: non-x86 targets compile only scalar).
IsaTier max_compiled_tier();

/// The widest compiled tier the running CPU (and OS) supports. Detected
/// once via CPUID; never changes during the process lifetime.
IsaTier detect_isa_tier();

/// detect_isa_tier() clamped by the SPC_ISA environment override. Reads
/// the environment on every call so tests can rebind after setenv(); an
/// unparseable value is diagnosed once to stderr and ignored.
IsaTier active_isa_tier();

/// All tiers usable on this host, ascending (always starts with scalar).
/// The dispatch fuzz test runs every format through every entry.
std::vector<IsaTier> available_isa_tiers();

// ------------------------------------------------------------------------
// The kernel table: one function pointer per dispatch-routed kernel.
// Raw-pointer signatures so per-ISA TUs need no format-object plumbing.
// ------------------------------------------------------------------------

/// CSR row-range kernel over raw arrays (ColT = uint32_t or uint16_t).
using CsrKernelFn = void (*)(const index_t* row_ptr,
                             const std::uint32_t* col_ind,
                             const value_t* values, const value_t* x,
                             value_t* y, index_t row_begin, index_t row_end);
using Csr16KernelFn = void (*)(const index_t* row_ptr,
                               const std::uint16_t* col_ind,
                               const value_t* values, const value_t* x,
                               value_t* y, index_t row_begin,
                               index_t row_end);

/// CSR-VI row-range kernel, one per value-index width.
template <typename IndT>
using CsrViKernelFn = void (*)(const index_t* row_ptr,
                               const std::uint32_t* col_ind,
                               const IndT* val_ind,
                               const value_t* vals_unique, const value_t* x,
                               value_t* y, index_t row_begin,
                               index_t row_end);

/// CSR-DU slice decode.
using DuKernelFn = void (*)(const CsrDu::Slice& s, const value_t* x,
                            value_t* y);

/// CSR-DU-VI slice decode, one per value-index width. The slice's
/// val_offset selects the start position in val_ind.
template <typename IndT>
using DuViKernelFn = void (*)(const CsrDu::Slice& s, const IndT* val_ind,
                              const value_t* vals_unique, const value_t* x,
                              value_t* y);

/// Column-tiled CSR segment kernel (spmv/tiling.hpp): runs segments
/// [seg_begin, seg_end), accumulating into the pre-zeroed y rows.
using CsrSegKernelFn = void (*)(const index_t* seg_ptr,
                                const index_t* seg_row,
                                const std::uint32_t* col_ind,
                                const value_t* values, const value_t* x,
                                value_t* y, usize_t seg_begin,
                                usize_t seg_end);

/// Column-tiled CSR-VI segment kernel, one per value-index width.
template <typename IndT>
using CsrViSegKernelFn = void (*)(const index_t* seg_ptr,
                                  const index_t* seg_row,
                                  const std::uint32_t* col_ind,
                                  const IndT* val_ind,
                                  const value_t* vals_unique,
                                  const value_t* x, value_t* y,
                                  usize_t seg_begin, usize_t seg_end);

/// Symmetric (SSS) row-range kernel with the conflict-window scatter
/// split (spmv/kernels.hpp): columns >= direct_begin update the shared
/// y, the rest land in win[c - win_begin]. direct_begin == 0 with a
/// private/serial y reproduces the classic paths.
using SymKernelFn = void (*)(const index_t* row_ptr,
                             const index_t* col_ind, const value_t* values,
                             const value_t* diag, const value_t* x,
                             value_t* y, value_t* win, index_t win_begin,
                             index_t direct_begin, index_t row_begin,
                             index_t row_end);

/// Symmetric CSR-VI kernel, one per value-index width; diagonal and
/// lower-triangle values resolve through one shared table.
template <typename IndT>
using SymViKernelFn = void (*)(const index_t* row_ptr,
                               const index_t* col_ind, const IndT* val_ind,
                               const IndT* diag_ind,
                               const value_t* vals_unique, const value_t* x,
                               value_t* y, value_t* win, index_t win_begin,
                               index_t direct_begin, index_t row_begin,
                               index_t row_end);

struct KernelTable {
  IsaTier tier = IsaTier::kScalar;
  CsrKernelFn csr = nullptr;
  Csr16KernelFn csr16 = nullptr;
  CsrViKernelFn<std::uint8_t> csr_vi_u8 = nullptr;
  CsrViKernelFn<std::uint16_t> csr_vi_u16 = nullptr;
  CsrViKernelFn<std::uint32_t> csr_vi_u32 = nullptr;
  DuKernelFn du = nullptr;
  DuViKernelFn<std::uint8_t> du_vi_u8 = nullptr;
  DuViKernelFn<std::uint16_t> du_vi_u16 = nullptr;
  DuViKernelFn<std::uint32_t> du_vi_u32 = nullptr;
  // Column-tiled entries (accumulating; see spmv/tiling.hpp). The SSE4.2
  // tier inherits the scalar entries like it does for DU.
  CsrSegKernelFn csr_seg = nullptr;
  CsrViSegKernelFn<std::uint8_t> csr_vi_seg_u8 = nullptr;
  CsrViSegKernelFn<std::uint16_t> csr_vi_seg_u16 = nullptr;
  CsrViSegKernelFn<std::uint32_t> csr_vi_seg_u32 = nullptr;
  DuKernelFn du_acc = nullptr;
  DuViKernelFn<std::uint8_t> du_vi_acc_u8 = nullptr;
  DuViKernelFn<std::uint16_t> du_vi_acc_u16 = nullptr;
  DuViKernelFn<std::uint32_t> du_vi_acc_u32 = nullptr;
  // Symmetric formats. The vector tiers vectorize the dot-product side
  // (the lower-triangle row gather); the scatter side stays scalar —
  // it is bounded by the window/store dependences, not by arithmetic.
  SymKernelFn sym_csr = nullptr;
  SymViKernelFn<std::uint8_t> sym_csr_vi_u8 = nullptr;
  SymViKernelFn<std::uint16_t> sym_csr_vi_u16 = nullptr;
  SymViKernelFn<std::uint32_t> sym_csr_vi_u32 = nullptr;
};

/// The kernel table for a tier, clamped to what this binary compiled and
/// this CPU supports. Every entry is non-null.
const KernelTable& kernel_table(IsaTier tier);

}  // namespace spc
