// AVX2+FMA dispatch tier — 256-bit (4-wide) kernels.
//
// Compiled with -mavx2 -mfma (see CMakeLists.txt); only ever *called*
// after runtime detection confirms CPU and OS support. Three kernel
// families live here:
//
//  * CSR / CSR-16: 4-wide FMA accumulation with vgatherdpd x-gathers
//    from the column indices, two independent accumulator chains (8
//    elements per iteration) to hide the gather latency, and software
//    prefetch of the col_ind/values streams.
//  * CSR-VI: the same loop with a second vgatherdpd through the
//    value-index table (val_ind widened u8/u16→i32 with pmovzx).
//  * CSR-DU / CSR-DU-VI: specialized unit-class decode loops. The varint
//    header path stays scalar; payloads vectorize per unit class —
//    stride-1 RLE units (dense/sequential runs) become contiguous vector
//    loads of x, strided RLE units 64-bit gathers, and u8..u64 delta
//    units resolve four indices ahead of the loads (breaking the serial
//    delta chain) and gather.
//
// All kernels keep one vector accumulator plus a scalar accumulator per
// row and combine them at row end, so the per-row sum reassociates
// relative to the scalar tier — bounded by the dispatch fuzz test.
//
// Index-width caveat: gathers index with *signed* 32-bit lanes, so
// column/value indices must stay below 2^31. SpmvInstance::prepare()
// clamps such matrices to the scalar tier.
#include <immintrin.h>

#include <cstring>

#include "spc/spmv/dispatch_tables.hpp"
#include "spc/spmv/kernels.hpp"
#include "spc/support/varint.hpp"

namespace spc::detail {

namespace {

inline double hsum256(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  lo = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(lo, _mm_unpackhi_pd(lo, lo)));
}

inline double hsum128(__m128d v) {
  return _mm_cvtsd_f64(_mm_add_sd(v, _mm_unpackhi_pd(v, v)));
}

inline std::uint32_t load_u16(const std::uint8_t* p) {
  std::uint16_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline std::uint64_t load_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

// Four consecutive indices widened to one i32x4 gather-index vector.
inline __m128i load_idx4(const std::uint32_t* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}

inline __m128i load_idx4(const std::uint16_t* p) {
  return _mm_cvtepu16_epi32(
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)));
}

inline __m128i load_idx4(const std::uint8_t* p) {
  std::uint32_t packed;
  std::memcpy(&packed, p, sizeof(packed));
  return _mm_cvtepu8_epi32(_mm_cvtsi32_si128(static_cast<int>(packed)));
}

// ------------------------------------------------------------ CSR(-16) ---

// Rows shorter than this take a gather-free 128-bit loop instead of the
// 256-bit gather loop: a vgatherdpd + 256-bit horizontal reduce cannot
// amortize over a handful of elements (measured on short-row corpus
// matrices: the all-gather kernel lost up to 40% to scalar at ~5 nnz/row,
// while the 2-wide manual-load loop *beats* scalar there by breaking the
// serial FP accumulation chain).
constexpr index_t kVectorMinRow = 8;

template <typename ColT>
void csr_avx2(const index_t* __restrict row_ptr,
              const ColT* __restrict col_ind,
              const value_t* __restrict values, const value_t* x,
              value_t* y, index_t row_begin, index_t row_end) {
  for (index_t i = row_begin; i < row_end; ++i) {
    index_t j = row_ptr[i];
    const index_t end = row_ptr[i + 1];
    if (end - j < kVectorMinRow) {
      __m128d a = _mm_setzero_pd();
      for (; j + 2 <= end; j += 2) {
        const __m128d xv = _mm_set_pd(x[col_ind[j + 1]], x[col_ind[j]]);
        a = _mm_fmadd_pd(_mm_loadu_pd(values + j), xv, a);
      }
      value_t acc = hsum128(a);
      if (j < end) {
        acc += values[j] * x[col_ind[j]];
      }
      y[i] = acc;
      continue;
    }
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (; j + 8 <= end; j += 8) {
      __builtin_prefetch(col_ind + j + 64, 0, 1);
      __builtin_prefetch(values + j + 32, 0, 1);
      const __m256d x0 = _mm256_i32gather_pd(x, load_idx4(col_ind + j), 8);
      const __m256d x1 =
          _mm256_i32gather_pd(x, load_idx4(col_ind + j + 4), 8);
      acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(values + j), x0, acc0);
      acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(values + j + 4), x1, acc1);
    }
    for (; j + 4 <= end; j += 4) {
      const __m256d x0 = _mm256_i32gather_pd(x, load_idx4(col_ind + j), 8);
      acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(values + j), x0, acc0);
    }
    value_t acc = hsum256(_mm256_add_pd(acc0, acc1));
    for (; j < end; ++j) {
      acc += values[j] * x[col_ind[j]];
    }
    y[i] = acc;
  }
}

// -------------------------------------------------------------- CSR-VI ---

template <typename IndT>
void csr_vi_avx2(const index_t* __restrict row_ptr,
                 const std::uint32_t* __restrict col_ind,
                 const IndT* __restrict val_ind,
                 const value_t* __restrict vals_unique, const value_t* x,
                 value_t* y, index_t row_begin, index_t row_end) {
  for (index_t i = row_begin; i < row_end; ++i) {
    index_t j = row_ptr[i];
    const index_t end = row_ptr[i + 1];
    if (end - j < kVectorMinRow) {
      __m128d a = _mm_setzero_pd();
      for (; j + 2 <= end; j += 2) {
        const __m128d vv = _mm_set_pd(vals_unique[val_ind[j + 1]],
                                      vals_unique[val_ind[j]]);
        const __m128d xv = _mm_set_pd(x[col_ind[j + 1]], x[col_ind[j]]);
        a = _mm_fmadd_pd(vv, xv, a);
      }
      value_t acc = hsum128(a);
      if (j < end) {
        acc += vals_unique[val_ind[j]] * x[col_ind[j]];
      }
      y[i] = acc;
      continue;
    }
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (; j + 8 <= end; j += 8) {
      __builtin_prefetch(col_ind + j + 64, 0, 1);
      __builtin_prefetch(val_ind + j + 64, 0, 1);
      const __m256d v0 =
          _mm256_i32gather_pd(vals_unique, load_idx4(val_ind + j), 8);
      const __m256d v1 =
          _mm256_i32gather_pd(vals_unique, load_idx4(val_ind + j + 4), 8);
      const __m256d x0 = _mm256_i32gather_pd(x, load_idx4(col_ind + j), 8);
      const __m256d x1 =
          _mm256_i32gather_pd(x, load_idx4(col_ind + j + 4), 8);
      acc0 = _mm256_fmadd_pd(v0, x0, acc0);
      acc1 = _mm256_fmadd_pd(v1, x1, acc1);
    }
    for (; j + 4 <= end; j += 4) {
      const __m256d v0 =
          _mm256_i32gather_pd(vals_unique, load_idx4(val_ind + j), 8);
      const __m256d x0 = _mm256_i32gather_pd(x, load_idx4(col_ind + j), 8);
      acc0 = _mm256_fmadd_pd(v0, x0, acc0);
    }
    value_t acc = hsum256(_mm256_add_pd(acc0, acc1));
    for (; j < end; ++j) {
      acc += vals_unique[val_ind[j]] * x[col_ind[j]];
    }
    y[i] = acc;
  }
}

// ---------------------------------------------------- CSR-DU(-VI) decode --

// Value sources abstract where the k-th non-zero's coefficient comes
// from: directly from the slice's value stream (CSR-DU) or through the
// value-index table (CSR-DU-VI, vgatherdpd).
struct DirectValues {
  const value_t* __restrict v;
  __m256d load4(usize_t k) const { return _mm256_loadu_pd(v + k); }
  value_t load1(usize_t k) const { return v[k]; }
};

template <typename IndT>
struct IndirectValues {
  const IndT* __restrict ind;
  const value_t* __restrict uniq;
  __m256d load4(usize_t k) const {
    return _mm256_i32gather_pd(uniq, load_idx4(ind + k), 8);
  }
  value_t load1(usize_t k) const { return uniq[ind[k]]; }
};

// The unit-class decode loop. `k` indexes the value source and starts at
// 0 for DirectValues (whose pointer is pre-offset) or s.val_offset for
// IndirectValues. Mirrors the scalar decoder's row bookkeeping exactly;
// only the per-unit payload loops differ.
//
// Accumulate is the column-tiled variant (see spmv/tiling.hpp): the
// per-row sum starts from the partial already in y (earlier stripes) and
// rows the stream skips are left untouched instead of zeroed.
template <bool Accumulate, typename ValueSource>
void du_decode_avx2(const CsrDu::Slice& s, const ValueSource& vs, usize_t k,
                    const value_t* x, value_t* y) {
  const std::uint8_t* p = s.ctl;
  const std::uint8_t* const end = s.ctl_end;
  std::int64_t row = s.row_state;
  const std::int64_t row_begin = s.row_begin;
  std::uint64_t x_idx = 0;
  value_t acc = 0.0;
  __m256d vacc = _mm256_setzero_pd();
  bool active = false;

  while (p < end) {
    const std::uint8_t uflags = *p++;
    std::uint32_t usize = *p++;
    if (uflags & kDuNewRow) {
      if (active) {
        y[row] = acc + hsum256(vacc);
      }
      std::uint64_t extra = 0;
      if (uflags & kDuRJmp) {
        extra = varint_decode(p);
      }
      if constexpr (!Accumulate) {
        for (std::int64_t r = std::max(row + 1, row_begin);
             r < row + 1 + static_cast<std::int64_t>(extra); ++r) {
          y[r] = 0.0;
        }
      }
      row += 1 + static_cast<std::int64_t>(extra);
      x_idx = 0;
      acc = Accumulate ? y[row] : 0.0;
      vacc = _mm256_setzero_pd();
      active = true;
    }
    x_idx += varint_decode(p);

    if (uflags & kDuRle) {
      const std::uint64_t stride = varint_decode(p);
      const std::uint64_t idx = x_idx;
      std::uint32_t t = 0;
      if (stride == 1) {
        // Dense/sequential run: x is contiguous — plain vector loads.
        for (; t + 4 <= usize; t += 4) {
          vacc = _mm256_fmadd_pd(vs.load4(k + t),
                                 _mm256_loadu_pd(x + idx + t), vacc);
        }
      } else {
        // Constant-stride run: 64-bit strided gather.
        for (; t + 4 <= usize; t += 4) {
          const std::uint64_t i0 = idx + static_cast<std::uint64_t>(t) * stride;
          const __m256i iv = _mm256_set_epi64x(
              static_cast<long long>(i0 + 3 * stride),
              static_cast<long long>(i0 + 2 * stride),
              static_cast<long long>(i0 + stride),
              static_cast<long long>(i0));
          vacc = _mm256_fmadd_pd(vs.load4(k + t),
                                 _mm256_i64gather_pd(x, iv, 8), vacc);
        }
      }
      for (; t < usize; ++t) {
        acc += vs.load1(k + t) * x[idx + static_cast<std::uint64_t>(t) * stride];
      }
      k += usize;
      x_idx = idx + static_cast<std::uint64_t>(usize - 1) * stride;
      continue;
    }

    // Delta-class unit: first element sits at x_idx, the remaining
    // usize-1 deltas follow in the class width. Resolving four indices
    // before the loads breaks the serial delta chain per block.
    acc += vs.load1(k++) * x[x_idx];
    std::uint32_t rem = usize - 1;
    switch (static_cast<DeltaClass>(uflags & kDuClassMask)) {
      case DeltaClass::kU8:
        while (rem >= 4) {
          const std::uint64_t i0 = x_idx + p[0];
          const std::uint64_t i1 = i0 + p[1];
          const std::uint64_t i2 = i1 + p[2];
          const std::uint64_t i3 = i2 + p[3];
          const __m256i iv = _mm256_set_epi64x(
              static_cast<long long>(i3), static_cast<long long>(i2),
              static_cast<long long>(i1), static_cast<long long>(i0));
          vacc = _mm256_fmadd_pd(vs.load4(k),
                                 _mm256_i64gather_pd(x, iv, 8), vacc);
          x_idx = i3;
          p += 4;
          k += 4;
          rem -= 4;
        }
        while (rem-- != 0) {
          x_idx += *p++;
          acc += vs.load1(k++) * x[x_idx];
        }
        break;
      case DeltaClass::kU16:
        while (rem >= 4) {
          const std::uint64_t i0 = x_idx + load_u16(p);
          const std::uint64_t i1 = i0 + load_u16(p + 2);
          const std::uint64_t i2 = i1 + load_u16(p + 4);
          const std::uint64_t i3 = i2 + load_u16(p + 6);
          const __m256i iv = _mm256_set_epi64x(
              static_cast<long long>(i3), static_cast<long long>(i2),
              static_cast<long long>(i1), static_cast<long long>(i0));
          vacc = _mm256_fmadd_pd(vs.load4(k),
                                 _mm256_i64gather_pd(x, iv, 8), vacc);
          x_idx = i3;
          p += 8;
          k += 4;
          rem -= 4;
        }
        while (rem-- != 0) {
          x_idx += load_u16(p);
          p += 2;
          acc += vs.load1(k++) * x[x_idx];
        }
        break;
      case DeltaClass::kU32:
        while (rem >= 4) {
          const std::uint64_t i0 = x_idx + load_u32(p);
          const std::uint64_t i1 = i0 + load_u32(p + 4);
          const std::uint64_t i2 = i1 + load_u32(p + 8);
          const std::uint64_t i3 = i2 + load_u32(p + 12);
          const __m256i iv = _mm256_set_epi64x(
              static_cast<long long>(i3), static_cast<long long>(i2),
              static_cast<long long>(i1), static_cast<long long>(i0));
          vacc = _mm256_fmadd_pd(vs.load4(k),
                                 _mm256_i64gather_pd(x, iv, 8), vacc);
          x_idx = i3;
          p += 16;
          k += 4;
          rem -= 4;
        }
        while (rem-- != 0) {
          x_idx += load_u32(p);
          p += 4;
          acc += vs.load1(k++) * x[x_idx];
        }
        break;
      case DeltaClass::kU64:
        // u64 deltas are vanishingly rare (one unit per >4G column jump);
        // not worth a gather block.
        while (rem-- != 0) {
          x_idx += load_u64(p);
          p += 8;
          acc += vs.load1(k++) * x[x_idx];
        }
        break;
    }
  }
  if (active) {
    y[row] = acc + hsum256(vacc);
  }
  if constexpr (!Accumulate) {
    for (std::int64_t r = std::max(row + 1, row_begin);
         r < static_cast<std::int64_t>(s.row_end); ++r) {
      y[r] = 0.0;
    }
  }
}

void du_avx2(const CsrDu::Slice& s, const value_t* x, value_t* y) {
  du_decode_avx2<false>(s, DirectValues{s.values}, 0, x, y);
}

template <typename IndT>
void du_vi_avx2(const CsrDu::Slice& s, const IndT* val_ind,
                const value_t* vals_unique, const value_t* x, value_t* y) {
  du_decode_avx2<false>(s, IndirectValues<IndT>{val_ind, vals_unique},
                        s.val_offset, x, y);
}

void du_acc_avx2(const CsrDu::Slice& s, const value_t* x, value_t* y) {
  du_decode_avx2<true>(s, DirectValues{s.values}, 0, x, y);
}

template <typename IndT>
void du_vi_acc_avx2(const CsrDu::Slice& s, const IndT* val_ind,
                    const value_t* vals_unique, const value_t* x,
                    value_t* y) {
  du_decode_avx2<true>(s, IndirectValues<IndT>{val_ind, vals_unique},
                       s.val_offset, x, y);
}

// ------------------------------------------------ column-tiled CSR(-VI) --

// Segment kernels for the tiled CSR store (spmv/tiling.hpp): the same
// gather loops as csr_avx2 / csr_vi_avx2, but each segment's sum starts
// from the partial already in y — segments of the same row across
// stripes chain through that y entry.

void csr_seg_avx2(const index_t* __restrict seg_ptr,
                  const index_t* __restrict seg_row,
                  const std::uint32_t* __restrict col_ind,
                  const value_t* __restrict values, const value_t* x,
                  value_t* y, usize_t seg_begin, usize_t seg_end) {
  for (usize_t s = seg_begin; s < seg_end; ++s) {
    const index_t r = seg_row[s];
    index_t j = seg_ptr[s];
    const index_t end = seg_ptr[s + 1];
    value_t acc = y[r];
    if (end - j < kVectorMinRow) {
      __m128d a = _mm_setzero_pd();
      for (; j + 2 <= end; j += 2) {
        const __m128d xv = _mm_set_pd(x[col_ind[j + 1]], x[col_ind[j]]);
        a = _mm_fmadd_pd(_mm_loadu_pd(values + j), xv, a);
      }
      acc += hsum128(a);
      if (j < end) {
        acc += values[j] * x[col_ind[j]];
      }
      y[r] = acc;
      continue;
    }
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (; j + 8 <= end; j += 8) {
      __builtin_prefetch(col_ind + j + 64, 0, 1);
      __builtin_prefetch(values + j + 32, 0, 1);
      const __m256d x0 = _mm256_i32gather_pd(x, load_idx4(col_ind + j), 8);
      const __m256d x1 =
          _mm256_i32gather_pd(x, load_idx4(col_ind + j + 4), 8);
      acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(values + j), x0, acc0);
      acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(values + j + 4), x1, acc1);
    }
    for (; j + 4 <= end; j += 4) {
      const __m256d x0 = _mm256_i32gather_pd(x, load_idx4(col_ind + j), 8);
      acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(values + j), x0, acc0);
    }
    acc += hsum256(_mm256_add_pd(acc0, acc1));
    for (; j < end; ++j) {
      acc += values[j] * x[col_ind[j]];
    }
    y[r] = acc;
  }
}

template <typename IndT>
void csr_vi_seg_avx2(const index_t* __restrict seg_ptr,
                     const index_t* __restrict seg_row,
                     const std::uint32_t* __restrict col_ind,
                     const IndT* __restrict val_ind,
                     const value_t* __restrict vals_unique, const value_t* x,
                     value_t* y, usize_t seg_begin, usize_t seg_end) {
  for (usize_t s = seg_begin; s < seg_end; ++s) {
    const index_t r = seg_row[s];
    index_t j = seg_ptr[s];
    const index_t end = seg_ptr[s + 1];
    value_t acc = y[r];
    if (end - j < kVectorMinRow) {
      __m128d a = _mm_setzero_pd();
      for (; j + 2 <= end; j += 2) {
        const __m128d vv = _mm_set_pd(vals_unique[val_ind[j + 1]],
                                      vals_unique[val_ind[j]]);
        const __m128d xv = _mm_set_pd(x[col_ind[j + 1]], x[col_ind[j]]);
        a = _mm_fmadd_pd(vv, xv, a);
      }
      acc += hsum128(a);
      if (j < end) {
        acc += vals_unique[val_ind[j]] * x[col_ind[j]];
      }
      y[r] = acc;
      continue;
    }
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (; j + 8 <= end; j += 8) {
      __builtin_prefetch(col_ind + j + 64, 0, 1);
      __builtin_prefetch(val_ind + j + 64, 0, 1);
      const __m256d v0 =
          _mm256_i32gather_pd(vals_unique, load_idx4(val_ind + j), 8);
      const __m256d v1 =
          _mm256_i32gather_pd(vals_unique, load_idx4(val_ind + j + 4), 8);
      const __m256d x0 = _mm256_i32gather_pd(x, load_idx4(col_ind + j), 8);
      const __m256d x1 =
          _mm256_i32gather_pd(x, load_idx4(col_ind + j + 4), 8);
      acc0 = _mm256_fmadd_pd(v0, x0, acc0);
      acc1 = _mm256_fmadd_pd(v1, x1, acc1);
    }
    for (; j + 4 <= end; j += 4) {
      const __m256d v0 =
          _mm256_i32gather_pd(vals_unique, load_idx4(val_ind + j), 8);
      const __m256d x0 = _mm256_i32gather_pd(x, load_idx4(col_ind + j), 8);
      acc0 = _mm256_fmadd_pd(v0, x0, acc0);
    }
    acc += hsum256(_mm256_add_pd(acc0, acc1));
    for (; j < end; ++j) {
      acc += vals_unique[val_ind[j]] * x[col_ind[j]];
    }
    y[r] = acc;
  }
}

// ------------------------------------------------- symmetric (SSS) ------

// The symmetric kernels split each row into a dot side (the lower
// triangle's gather-multiply — same shape as csr_avx2) and a scatter
// side (the mirrored upper triangle's y[c]/win updates). Only the dot
// side vectorizes: the scatter is a chain of read-modify-write stores to
// data-dependent addresses, which AVX2 cannot express (no scatter
// instruction, and lanes may collide). Long rows run the 4-wide gather
// dot sweep then a scalar scatter sweep over the same (L1-hot) span;
// short rows take one combined scalar pass.

inline void sym_scatter(const index_t* __restrict col_ind,
                        const value_t* __restrict values, index_t j0,
                        index_t j1, value_t xr, value_t* y,
                        value_t* __restrict win, index_t win_begin,
                        index_t direct_begin) {
  for (index_t j = j0; j < j1; ++j) {
    const index_t c = col_ind[j];
    if (c >= direct_begin) {
      y[c] += values[j] * xr;
    } else {
      win[c - win_begin] += values[j] * xr;
    }
  }
}

void sym_csr_avx2(const index_t* __restrict row_ptr,
                  const index_t* __restrict col_ind,
                  const value_t* __restrict values,
                  const value_t* __restrict diag, const value_t* x,
                  value_t* y, value_t* __restrict win, index_t win_begin,
                  index_t direct_begin, index_t row_begin,
                  index_t row_end) {
  for (index_t r = row_begin; r < row_end; ++r) {
    index_t j = row_ptr[r];
    const index_t end = row_ptr[r + 1];
    const value_t xr = x[r];
    value_t acc = diag[r] * xr;
    if (end - j < kVectorMinRow) {
      for (; j < end; ++j) {
        const index_t c = col_ind[j];
        const value_t v = values[j];
        acc += v * x[c];
        if (c >= direct_begin) {
          y[c] += v * xr;
        } else {
          win[c - win_begin] += v * xr;
        }
      }
      y[r] = acc;
      continue;
    }
    const index_t j0 = j;
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (; j + 8 <= end; j += 8) {
      __builtin_prefetch(col_ind + j + 64, 0, 1);
      __builtin_prefetch(values + j + 32, 0, 1);
      const __m256d x0 = _mm256_i32gather_pd(x, load_idx4(col_ind + j), 8);
      const __m256d x1 =
          _mm256_i32gather_pd(x, load_idx4(col_ind + j + 4), 8);
      acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(values + j), x0, acc0);
      acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(values + j + 4), x1, acc1);
    }
    for (; j + 4 <= end; j += 4) {
      const __m256d x0 = _mm256_i32gather_pd(x, load_idx4(col_ind + j), 8);
      acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(values + j), x0, acc0);
    }
    acc += hsum256(_mm256_add_pd(acc0, acc1));
    for (; j < end; ++j) {
      acc += values[j] * x[col_ind[j]];
    }
    sym_scatter(col_ind, values, j0, end, xr, y, win, win_begin,
                direct_begin);
    y[r] = acc;
  }
}

template <typename IndT>
void sym_csr_vi_avx2(const index_t* __restrict row_ptr,
                     const index_t* __restrict col_ind,
                     const IndT* __restrict val_ind,
                     const IndT* __restrict diag_ind,
                     const value_t* __restrict vals_unique,
                     const value_t* x, value_t* y, value_t* __restrict win,
                     index_t win_begin, index_t direct_begin,
                     index_t row_begin, index_t row_end) {
  for (index_t r = row_begin; r < row_end; ++r) {
    index_t j = row_ptr[r];
    const index_t end = row_ptr[r + 1];
    const value_t xr = x[r];
    value_t acc = vals_unique[diag_ind[r]] * xr;
    if (end - j < kVectorMinRow) {
      for (; j < end; ++j) {
        const index_t c = col_ind[j];
        const value_t v = vals_unique[val_ind[j]];
        acc += v * x[c];
        if (c >= direct_begin) {
          y[c] += v * xr;
        } else {
          win[c - win_begin] += v * xr;
        }
      }
      y[r] = acc;
      continue;
    }
    const index_t j0 = j;
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (; j + 8 <= end; j += 8) {
      __builtin_prefetch(col_ind + j + 64, 0, 1);
      __builtin_prefetch(val_ind + j + 64, 0, 1);
      const __m256d v0 =
          _mm256_i32gather_pd(vals_unique, load_idx4(val_ind + j), 8);
      const __m256d v1 =
          _mm256_i32gather_pd(vals_unique, load_idx4(val_ind + j + 4), 8);
      const __m256d x0 = _mm256_i32gather_pd(x, load_idx4(col_ind + j), 8);
      const __m256d x1 =
          _mm256_i32gather_pd(x, load_idx4(col_ind + j + 4), 8);
      acc0 = _mm256_fmadd_pd(v0, x0, acc0);
      acc1 = _mm256_fmadd_pd(v1, x1, acc1);
    }
    for (; j + 4 <= end; j += 4) {
      const __m256d v0 =
          _mm256_i32gather_pd(vals_unique, load_idx4(val_ind + j), 8);
      const __m256d x0 = _mm256_i32gather_pd(x, load_idx4(col_ind + j), 8);
      acc0 = _mm256_fmadd_pd(v0, x0, acc0);
    }
    acc += hsum256(_mm256_add_pd(acc0, acc1));
    for (; j < end; ++j) {
      acc += vals_unique[val_ind[j]] * x[col_ind[j]];
    }
    for (index_t s = j0; s < end; ++s) {
      const index_t c = col_ind[s];
      const value_t v = vals_unique[val_ind[s]];
      if (c >= direct_begin) {
        y[c] += v * xr;
      } else {
        win[c - win_begin] += v * xr;
      }
    }
    y[r] = acc;
  }
}

}  // namespace

const KernelTable& avx2_table() {
  static const KernelTable table = [] {
    KernelTable t;
    t.tier = IsaTier::kAvx2;
    t.csr = &csr_avx2<std::uint32_t>;
    t.csr16 = &csr_avx2<std::uint16_t>;
    t.csr_vi_u8 = &csr_vi_avx2<std::uint8_t>;
    t.csr_vi_u16 = &csr_vi_avx2<std::uint16_t>;
    t.csr_vi_u32 = &csr_vi_avx2<std::uint32_t>;
    t.du = &du_avx2;
    t.du_vi_u8 = &du_vi_avx2<std::uint8_t>;
    t.du_vi_u16 = &du_vi_avx2<std::uint16_t>;
    t.du_vi_u32 = &du_vi_avx2<std::uint32_t>;
    t.csr_seg = &csr_seg_avx2;
    t.csr_vi_seg_u8 = &csr_vi_seg_avx2<std::uint8_t>;
    t.csr_vi_seg_u16 = &csr_vi_seg_avx2<std::uint16_t>;
    t.csr_vi_seg_u32 = &csr_vi_seg_avx2<std::uint32_t>;
    t.du_acc = &du_acc_avx2;
    t.du_vi_acc_u8 = &du_vi_acc_avx2<std::uint8_t>;
    t.du_vi_acc_u16 = &du_vi_acc_avx2<std::uint16_t>;
    t.du_vi_acc_u32 = &du_vi_acc_avx2<std::uint32_t>;
    t.sym_csr = &sym_csr_avx2;
    t.sym_csr_vi_u8 = &sym_csr_vi_avx2<std::uint8_t>;
    t.sym_csr_vi_u16 = &sym_csr_vi_avx2<std::uint16_t>;
    t.sym_csr_vi_u32 = &sym_csr_vi_avx2<std::uint32_t>;
    return t;
  }();
  return table;
}

}  // namespace spc::detail
