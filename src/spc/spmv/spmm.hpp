// SpMM — sparse matrix times multiple dense vectors (Y = A·X).
//
// Blocked iterative methods (block CG/GMRES, multiple right-hand sides)
// multiply the same matrix with k vectors at once. Each matrix element
// then feeds k FMAs, so the matrix traffic is amortized k-fold — an
// *alternative* answer to the paper's bandwidth problem, orthogonal to
// compression and composable with it (ablation_spmm measures both).
//
// Layout: X is ncols×k and Y is nrows×k, row-major (vector index fastest:
// X[col*k + j]), which keeps the k loads of one element contiguous.
#pragma once

#include <memory>

#include "spc/formats/csr.hpp"
#include "spc/formats/csr_vi.hpp"
#include "spc/mm/vector.hpp"
#include "spc/support/types.hpp"

namespace spc {

/// Maximum simultaneous vectors the kernels are specialized for.
inline constexpr index_t kSpmmMaxVectors = 16;

/// Row-range CSR SpMM.
void spmm_csr_range(const Csr& m, const value_t* X, value_t* Y, index_t k,
                    index_t row_begin, index_t row_end);

inline void spmm(const Csr& m, const value_t* X, value_t* Y, index_t k) {
  spmm_csr_range(m, X, Y, k, 0, m.nrows());
}

/// Row-range CSR-VI SpMM (value indirection + amortization composed).
void spmm_csr_vi_range(const CsrVi& m, const value_t* X, value_t* Y,
                       index_t k, index_t row_begin, index_t row_end);

inline void spmm(const CsrVi& m, const value_t* X, value_t* Y, index_t k) {
  spmm_csr_vi_range(m, X, Y, k, 0, m.nrows());
}

/// Prepared multithreaded SpMM: nnz-balanced row partition over a pinned
/// pool, mirroring SpmvInstance for the multi-vector case.
class SpmmRunner {
 public:
  enum class Kind { kCsr, kCsrVi };

  SpmmRunner(const Triplets& t, Kind kind, index_t k,
             std::size_t nthreads = 1, bool pin_threads = false);
  ~SpmmRunner();
  SpmmRunner(SpmmRunner&&) noexcept;

  index_t nrows() const;
  index_t ncols() const;
  index_t vectors() const { return k_; }
  usize_t matrix_bytes() const;

  /// Y = A*X; X has ncols*k entries, Y nrows*k (row-major, vector index
  /// fastest).
  void run(const Vector& X, Vector& Y);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  index_t k_ = 1;
};

}  // namespace spc
