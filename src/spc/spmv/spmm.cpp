#include "spc/spmv/spmm.hpp"

#include <variant>

#include "spc/parallel/partition.hpp"
#include "spc/parallel/thread_pool.hpp"
#include "spc/support/error.hpp"
#include "spc/support/topology.hpp"

namespace spc {

namespace {

// Fixed-width inner kernel: K accumulators live in registers.
template <index_t K, typename ValueAt>
void spmm_rows_fixed(const aligned_vector<index_t>& row_ptr,
                     const aligned_vector<std::uint32_t>& col_ind,
                     ValueAt value_at, const value_t* __restrict X,
                     value_t* __restrict Y, index_t row_begin,
                     index_t row_end) {
  for (index_t i = row_begin; i < row_end; ++i) {
    value_t acc[K] = {};
    const index_t end = row_ptr[i + 1];
    for (index_t j = row_ptr[i]; j < end; ++j) {
      const value_t v = value_at(j);
      const value_t* const xrow = X + static_cast<usize_t>(col_ind[j]) * K;
      for (index_t c = 0; c < K; ++c) {
        acc[c] += v * xrow[c];
      }
    }
    value_t* const yrow = Y + static_cast<usize_t>(i) * K;
    for (index_t c = 0; c < K; ++c) {
      yrow[c] = acc[c];
    }
  }
}

// Runtime-k fallback.
template <typename ValueAt>
void spmm_rows_any(const aligned_vector<index_t>& row_ptr,
                   const aligned_vector<std::uint32_t>& col_ind,
                   ValueAt value_at, const value_t* __restrict X,
                   value_t* __restrict Y, index_t k, index_t row_begin,
                   index_t row_end) {
  for (index_t i = row_begin; i < row_end; ++i) {
    value_t* const yrow = Y + static_cast<usize_t>(i) * k;
    for (index_t c = 0; c < k; ++c) {
      yrow[c] = 0.0;
    }
    const index_t end = row_ptr[i + 1];
    for (index_t j = row_ptr[i]; j < end; ++j) {
      const value_t v = value_at(j);
      const value_t* const xrow = X + static_cast<usize_t>(col_ind[j]) * k;
      for (index_t c = 0; c < k; ++c) {
        yrow[c] += v * xrow[c];
      }
    }
  }
}

template <typename ValueAt>
void spmm_dispatch(const aligned_vector<index_t>& row_ptr,
                   const aligned_vector<std::uint32_t>& col_ind,
                   ValueAt value_at, const value_t* X, value_t* Y,
                   index_t k, index_t row_begin, index_t row_end) {
  SPC_CHECK_MSG(k >= 1, "SpMM needs at least one vector");
  switch (k) {
    case 1:
      spmm_rows_fixed<1>(row_ptr, col_ind, value_at, X, Y, row_begin,
                         row_end);
      break;
    case 2:
      spmm_rows_fixed<2>(row_ptr, col_ind, value_at, X, Y, row_begin,
                         row_end);
      break;
    case 4:
      spmm_rows_fixed<4>(row_ptr, col_ind, value_at, X, Y, row_begin,
                         row_end);
      break;
    case 8:
      spmm_rows_fixed<8>(row_ptr, col_ind, value_at, X, Y, row_begin,
                         row_end);
      break;
    case 16:
      spmm_rows_fixed<16>(row_ptr, col_ind, value_at, X, Y, row_begin,
                          row_end);
      break;
    default:
      spmm_rows_any(row_ptr, col_ind, value_at, X, Y, k, row_begin,
                    row_end);
      break;
  }
}

}  // namespace

void spmm_csr_range(const Csr& m, const value_t* X, value_t* Y, index_t k,
                    index_t row_begin, index_t row_end) {
  const value_t* const values = m.values().data();
  spmm_dispatch(m.row_ptr(), m.col_ind(),
                [values](index_t j) { return values[j]; }, X, Y, k,
                row_begin, row_end);
}

void spmm_csr_vi_range(const CsrVi& m, const value_t* X, value_t* Y,
                       index_t k, index_t row_begin, index_t row_end) {
  const value_t* const uniq = m.vals_unique().data();
  switch (m.width()) {
    case ViWidth::kU8: {
      const std::uint8_t* const ind = m.val_ind_raw().data();
      spmm_dispatch(m.row_ptr(), m.col_ind(),
                    [uniq, ind](index_t j) { return uniq[ind[j]]; }, X, Y,
                    k, row_begin, row_end);
      break;
    }
    case ViWidth::kU16: {
      const std::uint16_t* const ind = m.val_ind_as<std::uint16_t>();
      spmm_dispatch(m.row_ptr(), m.col_ind(),
                    [uniq, ind](index_t j) { return uniq[ind[j]]; }, X, Y,
                    k, row_begin, row_end);
      break;
    }
    case ViWidth::kU32: {
      const std::uint32_t* const ind = m.val_ind_as<std::uint32_t>();
      spmm_dispatch(m.row_ptr(), m.col_ind(),
                    [uniq, ind](index_t j) { return uniq[ind[j]]; }, X, Y,
                    k, row_begin, row_end);
      break;
    }
  }
}

struct SpmmRunner::Impl {
  std::variant<Csr, CsrVi> matrix;
  RowPartition partition;
  std::unique_ptr<ThreadPool> pool;
  std::size_t nthreads = 1;
};

SpmmRunner::~SpmmRunner() = default;
SpmmRunner::SpmmRunner(SpmmRunner&&) noexcept = default;

SpmmRunner::SpmmRunner(const Triplets& t, Kind kind, index_t k,
                       std::size_t nthreads, bool pin_threads)
    : impl_(std::make_unique<Impl>()), k_(k) {
  SPC_CHECK_MSG(k >= 1, "SpMM needs at least one vector");
  SPC_CHECK_MSG(nthreads >= 1, "nthreads must be >= 1");
  if (kind == Kind::kCsr) {
    impl_->matrix.emplace<Csr>(Csr::from_triplets(t));
  } else {
    impl_->matrix.emplace<CsrVi>(CsrVi::from_triplets(t));
  }
  impl_->nthreads = nthreads;
  if (nthreads > 1) {
    impl_->partition = partition_rows_by_nnz(t, nthreads);
    std::vector<int> plan;
    if (pin_threads) {
      plan = plan_placement(discover_topology(), nthreads,
                            Placement::kCloseFirst);
    }
    impl_->pool = std::make_unique<ThreadPool>(nthreads, plan);
  }
}

index_t SpmmRunner::nrows() const {
  return std::visit([](const auto& m) { return m.nrows(); },
                    impl_->matrix);
}

index_t SpmmRunner::ncols() const {
  return std::visit([](const auto& m) { return m.ncols(); },
                    impl_->matrix);
}

usize_t SpmmRunner::matrix_bytes() const {
  return std::visit([](const auto& m) { return m.bytes(); },
                    impl_->matrix);
}

void SpmmRunner::run(const Vector& X, Vector& Y) {
  SPC_CHECK_MSG(X.size() == static_cast<usize_t>(ncols()) * k_,
                "X has wrong dimension");
  SPC_CHECK_MSG(Y.size() == static_cast<usize_t>(nrows()) * k_,
                "Y has wrong dimension");
  const value_t* const xp = X.data();
  value_t* const yp = Y.data();
  const auto run_range = [&](index_t r0, index_t r1) {
    if (const auto* csr = std::get_if<Csr>(&impl_->matrix)) {
      spmm_csr_range(*csr, xp, yp, k_, r0, r1);
    } else {
      spmm_csr_vi_range(std::get<CsrVi>(impl_->matrix), xp, yp, k_, r0,
                        r1);
    }
  };
  if (impl_->nthreads == 1) {
    run_range(0, nrows());
    return;
  }
  impl_->pool->run([&](std::size_t th) {
    run_range(impl_->partition.row_begin(th),
              impl_->partition.row_end(th));
  });
}

}  // namespace spc
