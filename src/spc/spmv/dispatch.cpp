#include "spc/spmv/dispatch.hpp"

#include "spc/spmv/dispatch_tables.hpp"
#include "spc/support/env.hpp"
#include "spc/support/strutil.hpp"

namespace spc {

std::string isa_tier_name(IsaTier t) {
  switch (t) {
    case IsaTier::kScalar:
      return "scalar";
    case IsaTier::kSse42:
      return "sse42";
    case IsaTier::kAvx2:
      return "avx2";
  }
  return "?";
}

bool parse_isa_tier(const std::string& name, IsaTier* out) {
  const std::string n = to_lower(name);
  if (n == "scalar") {
    *out = IsaTier::kScalar;
  } else if (n == "sse42" || n == "sse4.2") {
    *out = IsaTier::kSse42;
  } else if (n == "avx2") {
    *out = IsaTier::kAvx2;
  } else {
    return false;
  }
  return true;
}

IsaTier max_compiled_tier() {
#if SPC_HAVE_AVX2_TU
  return IsaTier::kAvx2;
#elif SPC_HAVE_SSE42_TU
  return IsaTier::kSse42;
#else
  return IsaTier::kScalar;
#endif
}

IsaTier detect_isa_tier() {
  static const IsaTier detected = [] {
    IsaTier t = IsaTier::kScalar;
#if defined(__x86_64__) || defined(__i386__)
    // __builtin_cpu_supports consults libgcc's CPUID model, which also
    // checks XCR0, so AVX2 only reports true when the OS saves the ymm
    // state — a single binary degrades cleanly on any host.
#if SPC_HAVE_SSE42_TU
    if (__builtin_cpu_supports("sse4.2")) {
      t = IsaTier::kSse42;
    }
#endif
#if SPC_HAVE_AVX2_TU
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
      t = IsaTier::kAvx2;
    }
#endif
#endif
    return t;
  }();
  return detected;
}

IsaTier active_isa_tier() {
  const IsaTier detected = detect_isa_tier();
  const auto env = env_str("SPC_ISA");
  if (!env) {
    return detected;
  }
  IsaTier requested;
  if (!parse_isa_tier(*env, &requested)) {
    env_warn_once("SPC_ISA", *env, "scalar|sse42|avx2");
    return detected;
  }
  // The override can only narrow: asking for a wider ISA than the host
  // supports clamps to what actually runs.
  return requested < detected ? requested : detected;
}

std::vector<IsaTier> available_isa_tiers() {
  std::vector<IsaTier> tiers = {IsaTier::kScalar};
  const IsaTier top = detect_isa_tier();
  if (top >= IsaTier::kSse42) {
    tiers.push_back(IsaTier::kSse42);
  }
  if (top >= IsaTier::kAvx2) {
    tiers.push_back(IsaTier::kAvx2);
  }
  return tiers;
}

const KernelTable& kernel_table(IsaTier tier) {
  if (tier > detect_isa_tier()) {
    tier = detect_isa_tier();
  }
  switch (tier) {
    case IsaTier::kAvx2:
#if SPC_HAVE_AVX2_TU
      return detail::avx2_table();
#else
      break;
#endif
    case IsaTier::kSse42:
#if SPC_HAVE_SSE42_TU
      return detail::sse42_table();
#else
      break;
#endif
    case IsaTier::kScalar:
      break;
  }
  return detail::scalar_table();
}

}  // namespace spc
