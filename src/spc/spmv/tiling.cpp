#include "spc/spmv/tiling.hpp"

#include <algorithm>

#include "spc/support/env.hpp"
#include "spc/support/error.hpp"
#include "spc/support/strutil.hpp"

namespace spc {

std::string tile_config_name(const TileConfig& cfg) {
  switch (cfg.mode) {
    case TileMode::kAuto:
      return "auto";
    case TileMode::kOff:
      return "off";
    case TileMode::kForced:
      return std::to_string(cfg.stripe_bytes);
  }
  return "?";
}

bool parse_tile_config(const std::string& s, TileConfig* out) {
  const std::string v = to_lower(s);
  if (v == "auto") {
    out->mode = TileMode::kAuto;
    out->stripe_bytes = 0;
    return true;
  }
  if (v == "off" || v == "0") {
    out->mode = TileMode::kOff;
    out->stripe_bytes = 0;
    return true;
  }
  if (v.empty()) {
    return false;
  }
  std::size_t bytes = 0;
  std::size_t i = 0;
  for (; i < v.size() && v[i] >= '0' && v[i] <= '9'; ++i) {
    bytes = bytes * 10 + static_cast<std::size_t>(v[i] - '0');
  }
  if (i == 0) {
    return false;
  }
  if (i < v.size()) {
    if (i + 1 != v.size()) {
      return false;
    }
    if (v[i] == 'k') {
      bytes <<= 10;
    } else if (v[i] == 'm') {
      bytes <<= 20;
    } else {
      return false;
    }
  }
  if (bytes == 0) {
    return false;
  }
  out->mode = TileMode::kForced;
  out->stripe_bytes = bytes;
  return true;
}

TileConfig tile_config_from_env(const TileConfig& cfg) {
  const auto env = env_str("SPC_TILE");
  if (!env) {
    return cfg;
  }
  TileConfig out = cfg;
  if (!parse_tile_config(*env, &out)) {
    env_warn_once("SPC_TILE", *env, "auto|off|<bytes>[k|m]");
  }
  return out;
}

TilePlan plan_tiles(const TileConfig& cfg, index_t nrows, index_t ncols,
                    usize_t nnz, double mean_row_span_cols,
                    std::size_t l1d_bytes, std::size_t l2_bytes) {
  constexpr std::size_t kMinStripeBytes = 8u << 10;
  constexpr std::size_t kMaxStripeBytes = 256u << 10;
  constexpr std::size_t kDefaultStripeBytes = 16u << 10;
  constexpr std::size_t kMinCacheBytes = 256u << 10;

  TilePlan p;
  if (cfg.mode == TileMode::kOff) {
    p.decline_reason = "off";
    return p;
  }
  if (nrows == 0 || ncols == 0 || nnz == 0) {
    p.decline_reason = "empty matrix";
    return p;
  }
  std::size_t sb = cfg.stripe_bytes;
  if (cfg.mode == TileMode::kAuto) {
    sb = l1d_bytes != 0 ? l1d_bytes / 2 : kDefaultStripeBytes;
    sb = std::clamp(sb, kMinStripeBytes, kMaxStripeBytes);
  }
  const index_t stripe_cols = static_cast<index_t>(
      std::max<std::size_t>(1, sb / sizeof(value_t)));
  const index_t nstripes =
      (ncols + stripe_cols - 1) / stripe_cols;

  if (cfg.mode == TileMode::kAuto) {
    const std::size_t x_bytes =
        static_cast<std::size_t>(ncols) * sizeof(value_t);
    const std::size_t cache = std::max(l2_bytes, kMinCacheBytes);
    if (x_bytes <= 2 * cache) {
      p.decline_reason = "x fits cache";
      return p;
    }
    if (nstripes < 2) {
      p.decline_reason = "single stripe";
      return p;
    }
    if (mean_row_span_cols <=
        2.0 * static_cast<double>(stripe_cols)) {
      p.decline_reason = "banded rows";
      return p;
    }
  }

  p.active = true;
  p.stripe_cols = stripe_cols;
  p.nstripes = nstripes;
  p.stripe_bytes = static_cast<std::size_t>(stripe_cols) * sizeof(value_t);
  return p;
}

double mean_row_span_cols(const Triplets& t) {
  const std::vector<Entry>& es = t.entries();
  if (es.empty()) {
    return 0.0;
  }
  double weighted = 0.0;
  usize_t k = 0;
  const usize_t n = es.size();
  while (k < n) {
    const index_t row = es[k].row;
    const index_t first = es[k].col;  // sorted: min column of the row
    usize_t e = k;
    while (e + 1 < n && es[e + 1].row == row) {
      ++e;
    }
    const usize_t row_nnz = e - k + 1;
    weighted += static_cast<double>(row_nnz) *
                static_cast<double>(es[e].col - first + 1);
    k = e + 1;
  }
  return weighted / static_cast<double>(n);
}

namespace {

void accumulate_histogram(const CsrDu::UnitHistogram& h,
                          CsrDu::UnitHistogram* out) {
  out->units += h.units;
  for (int c = 0; c < 4; ++c) {
    out->units_per_class[c] += h.units_per_class[c];
    out->elems_per_class[c] += h.elems_per_class[c];
  }
  out->rle_units += h.rle_units;
  out->rle_elems += h.rle_elems;
  out->seq_units += h.seq_units;
  out->seq_elems += h.seq_elems;
  out->nnz += h.nnz;
}

}  // namespace

TiledStore build_tiled_store(const Triplets& t,
                             const std::vector<index_t>& bounds,
                             const TilePlan& plan,
                             const TiledStoreSpec& spec) {
  SPC_CHECK_MSG(plan.active && plan.stripe_cols >= 1,
                "build_tiled_store requires an active tile plan");
  SPC_CHECK_MSG(bounds.size() >= 2, "need at least one execution block");

  TiledStore st;
  st.vi_elem = spec.vi_elem;
  const std::vector<Entry>& es = t.entries();
  const usize_t nnz = es.size();
  const index_t scols = plan.stripe_cols;
  const std::size_t nstripes = plan.nstripes;
  const std::size_t nblocks = bounds.size() - 1;

  st.blocks.reserve(nblocks);
  if (!spec.du) {
    st.col.reserve(nnz);
  }
  if (spec.values) {
    st.val.reserve(nnz);
  }
  if (spec.vi_elem != 0) {
    st.vi.reserve(nnz * spec.vi_elem);
  }

  // Per-block scratch: stripe occupancy counts, prefix offsets, and the
  // stripe-major permutation of the block's elements (stable, so the
  // original row-major order is preserved within each stripe).
  std::vector<usize_t> stripe_off(nstripes + 1, 0);
  std::vector<usize_t> cursor(nstripes, 0);
  std::vector<usize_t> perm;

  usize_t elems = 0;  // elements appended so far, all blocks
  usize_t e0 = 0;     // first element of the current block
  for (std::size_t b = 0; b < nblocks; ++b) {
    TileBlock blk;
    blk.row_begin = bounds[b];
    blk.row_end = bounds[b + 1];
    blk.tile_begin = st.tiles.size();
    blk.seg_begin = st.seg_row.size();
    blk.ctl_begin = st.ctl.size();
    blk.val_begin = elems;

    usize_t e1 = e0;
    while (e1 < nnz && es[e1].row < blk.row_end) {
      ++e1;
    }
    blk.nnz = e1 - e0;

    if (e1 != e0) {
      std::fill(stripe_off.begin(), stripe_off.end(), 0);
      for (usize_t k = e0; k < e1; ++k) {
        ++stripe_off[es[k].col / scols + 1];
      }
      for (std::size_t s = 0; s < nstripes; ++s) {
        stripe_off[s + 1] += stripe_off[s];
        cursor[s] = stripe_off[s];
      }
      perm.resize(e1 - e0);
      for (usize_t k = e0; k < e1; ++k) {
        perm[cursor[es[k].col / scols]++] = k;
      }

      for (std::size_t s = 0; s < nstripes; ++s) {
        const usize_t tb = stripe_off[s];
        const usize_t te = stripe_off[s + 1];
        if (tb == te) {
          continue;  // empty stripe: no tile, zero bytes
        }
        StripeTile tile;
        tile.x_base = static_cast<index_t>(s) * scols;
        tile.val_begin = elems;
        tile.nnz = te - tb;

        if (spec.du) {
          tile.ctl_begin = st.ctl.size();
          const index_t width =
              std::min<index_t>(scols, t.ncols() - tile.x_base);
          Triplets local(blk.row_end - blk.row_begin, width);
          local.reserve(te - tb);
          for (usize_t k = tb; k < te; ++k) {
            const Entry& e = es[perm[k]];
            local.add(e.row - blk.row_begin, e.col - tile.x_base, e.val);
          }
          local.sort_and_combine();
          const CsrDu tm = CsrDu::from_triplets(local, spec.du_opts);
          st.ctl.insert(st.ctl.end(), tm.ctl().begin(), tm.ctl().end());
          tile.ctl_end = st.ctl.size();
          if (spec.values) {
            st.val.insert(st.val.end(), tm.values().begin(),
                          tm.values().end());
          }
          accumulate_histogram(tm.unit_histogram(), &st.du_hist);
          st.has_du_hist = true;
        } else {
          tile.seg_begin = st.seg_row.size();
          index_t prev_row = 0;
          bool open = false;
          for (usize_t k = tb; k < te; ++k) {
            const Entry& e = es[perm[k]];
            if (!open || e.row != prev_row) {
              st.seg_row.push_back(e.row);
              st.seg_ptr.push_back(
                  static_cast<index_t>(elems + (k - tb)));
              prev_row = e.row;
              open = true;
            }
            st.col.push_back(e.col);
            if (spec.values) {
              st.val.push_back(e.val);
            }
          }
          tile.seg_end = st.seg_row.size();
        }
        if (spec.vi_elem != 0) {
          for (usize_t k = tb; k < te; ++k) {
            const std::uint8_t* src =
                spec.vi_src + perm[k] * spec.vi_elem;
            st.vi.insert(st.vi.end(), src, src + spec.vi_elem);
          }
        }
        elems += tile.nnz;
        st.tiles.push_back(tile);
      }
    }

    blk.tile_end = st.tiles.size();
    blk.seg_end = st.seg_row.size();
    blk.ctl_end = st.ctl.size();
    st.blocks.push_back(blk);
    e0 = e1;
  }
  SPC_CHECK_MSG(elems == nnz, "tiled store lost elements");
  if (!spec.du) {
    // Close the final segment; seg_ptr now has nsegments + 1 entries.
    st.seg_ptr.push_back(static_cast<index_t>(elems));
  }
  return st;
}

}  // namespace spc
