// SpMV kernels (y = A*x) for every storage format.
//
// All kernels are *row-range* kernels: they compute y for rows
// [row_begin, row_end) only, which makes the serial case (full range) and
// the multithreaded row-partitioned case (per-thread ranges) share one
// implementation. Per the paper's code (§VI-A), each row's partial sum is
// kept in a register and written to y once at the end of the row.
//
// Kernels take raw pointers: the caller guarantees x has ncols elements
// and y has nrows elements.
#pragma once

#include <cstdint>

#include "spc/formats/bcsr.hpp"
#include "spc/formats/coo.hpp"
#include "spc/formats/csc.hpp"
#include "spc/formats/csr.hpp"
#include "spc/formats/csr_du.hpp"
#include "spc/formats/csr_du_vi.hpp"
#include "spc/formats/csr_vi.hpp"
#include "spc/formats/dcsr.hpp"
#include "spc/formats/dia.hpp"
#include "spc/formats/ell.hpp"
#include "spc/formats/jds.hpp"
#include "spc/formats/sym_csr.hpp"
#include "spc/formats/sym_csr_vi.hpp"
#include "spc/support/types.hpp"

namespace spc {

// ---------------------------------------------------------------- CSR ---

/// The paper's baseline kernel (§II-B) with the register-accumulator
/// optimization (§VI-A), over raw arrays. This is the scalar-dispatch
/// entry and the oracle the vectorized tiers are fuzzed against.
template <typename ColIndexT>
void spmv_csr_raw(const index_t* __restrict row_ptr,
                  const ColIndexT* __restrict col_ind,
                  const value_t* __restrict values, const value_t* x,
                  value_t* y, index_t row_begin, index_t row_end) {
  for (index_t i = row_begin; i < row_end; ++i) {
    value_t acc = 0.0;
    const index_t end = row_ptr[i + 1];
    for (index_t j = row_ptr[i]; j < end; ++j) {
      acc += values[j] * x[col_ind[j]];
    }
    y[i] = acc;
  }
}

template <typename ColIndexT>
void spmv_csr_range(const BasicCsr<ColIndexT>& m, const value_t* x,
                    value_t* y, index_t row_begin, index_t row_end) {
  spmv_csr_raw(m.row_ptr().data(), m.col_ind().data(), m.values().data(),
               x, y, row_begin, row_end);
}

template <typename ColIndexT>
void spmv(const BasicCsr<ColIndexT>& m, const value_t* x, value_t* y) {
  spmv_csr_range(m, x, y, 0, m.nrows());
}

/// CSR kernel with software prefetch of the x gathers `Dist` elements
/// ahead — the classic mitigation for the irregular x accesses the
/// paper's related work (§III-A) targets with reordering/blocking.
/// Compared by bench/ablation_prefetch.
template <typename ColIndexT, int Dist = 16>
void spmv_csr_prefetch_range(const BasicCsr<ColIndexT>& m,
                             const value_t* x, value_t* y,
                             index_t row_begin, index_t row_end) {
  const index_t* const __restrict row_ptr = m.row_ptr().data();
  const ColIndexT* const __restrict col_ind = m.col_ind().data();
  const value_t* const __restrict values = m.values().data();
  const index_t nnz_end = row_ptr[row_end];
  for (index_t i = row_begin; i < row_end; ++i) {
    value_t acc = 0.0;
    const index_t end = row_ptr[i + 1];
    for (index_t j = row_ptr[i]; j < end; ++j) {
      if (j + Dist < nnz_end) {
        __builtin_prefetch(&x[col_ind[j + Dist]], 0, 1);
      }
      acc += values[j] * x[col_ind[j]];
    }
    y[i] = acc;
  }
}

// ------------------------------------------------- column-tiled CSR(-VI) ---

/// Segment kernel for the column-tiled stores (spmv/tiling.hpp): each
/// segment [seg_ptr[s], seg_ptr[s+1]) is one row's run within one
/// stripe, and *accumulates* into y[seg_row[s]] — the caller pre-zeroes
/// the block's y rows and executes the block's segments in order
/// (stripes ascending), so each row's elements are summed left-to-right
/// exactly as the untiled kernel would: results are bit-identical at
/// the scalar tier (a store/load of a double between stripes is exact).
inline void spmv_csr_seg_acc(const index_t* __restrict seg_ptr,
                             const index_t* __restrict seg_row,
                             const std::uint32_t* __restrict col_ind,
                             const value_t* __restrict values,
                             const value_t* x, value_t* y,
                             usize_t seg_begin, usize_t seg_end) {
  for (usize_t s = seg_begin; s < seg_end; ++s) {
    const index_t r = seg_row[s];
    value_t acc = y[r];
    const index_t end = seg_ptr[s + 1];
    for (index_t j = seg_ptr[s]; j < end; ++j) {
      acc += values[j] * x[col_ind[j]];
    }
    y[r] = acc;
  }
}

/// CSR-VI variant: values come through the value-index table.
template <typename IndT>
void spmv_csr_vi_seg_acc(const index_t* __restrict seg_ptr,
                         const index_t* __restrict seg_row,
                         const std::uint32_t* __restrict col_ind,
                         const IndT* __restrict val_ind,
                         const value_t* __restrict vals_unique,
                         const value_t* x, value_t* y, usize_t seg_begin,
                         usize_t seg_end) {
  for (usize_t s = seg_begin; s < seg_end; ++s) {
    const index_t r = seg_row[s];
    value_t acc = y[r];
    const index_t end = seg_ptr[s + 1];
    for (index_t j = seg_ptr[s]; j < end; ++j) {
      acc += vals_unique[val_ind[j]] * x[col_ind[j]];
    }
    y[r] = acc;
  }
}

// ---------------------------------------------------------------- COO ---

/// Serial COO kernel. Writes the full y (zero-fills first).
void spmv(const Coo& m, const value_t* x, value_t* y);

// ---------------------------------------------------------------- CSC ---

/// Serial CSC kernel: column-major scatter into y (zero-fills first).
void spmv(const Csc& m, const value_t* x, value_t* y);

/// Column-range CSC kernel accumulating into `y` *without* zero-filling;
/// used by the column-partitioned multithreaded path (§II-C), where each
/// thread owns a private y copy that is reduced afterwards.
void spmv_csc_cols(const Csc& m, const value_t* x, value_t* y,
                   index_t col_begin, index_t col_end);

// --------------------------------------------------------------- BCSR ---

/// Raw-array BCSR kernel, the common core of the serial and per-thread
/// paths. `block_row_ptr` is indexed with absolute block rows (a
/// repacked per-thread copy passes a rebased pointer, see
/// support/first_touch.hpp); `block_col` and `values` are indexed by the
/// values `block_row_ptr` yields.
void spmv_bcsr_raw(index_t block_rows, index_t block_cols, index_t nrows,
                   index_t ncols, const index_t* block_row_ptr,
                   const index_t* block_col, const value_t* values,
                   const value_t* x, value_t* y, index_t block_row_begin,
                   index_t block_row_end);

/// Row-range (in block rows) BCSR kernel. Handles ragged edge blocks.
void spmv_bcsr_range(const Bcsr& m, const value_t* x, value_t* y,
                     index_t block_row_begin, index_t block_row_end);

void spmv(const Bcsr& m, const value_t* x, value_t* y);

// ---------------------------------------------------------------- ELL ---

/// Raw-array ELLPACK kernel; `col_ind` / `values` are indexed with
/// absolute positions r*width+k (repacked per-thread copies pass rebased
/// pointers).
void spmv_ell_raw(index_t width, const index_t* col_ind,
                  const value_t* values, const value_t* x, value_t* y,
                  index_t row_begin, index_t row_end);

/// Row-range ELLPACK kernel: fixed-width rows, branch-free inner loop
/// (padding contributes 0 * x[pad]).
void spmv_ell_range(const Ell& m, const value_t* x, value_t* y,
                    index_t row_begin, index_t row_end);

void spmv(const Ell& m, const value_t* x, value_t* y);

// ---------------------------------------------------------------- DIA ---

/// Row-range DIA kernel: zero-fills y[row_begin, row_end) then streams
/// each diagonal's overlap with the range.
void spmv_dia_range(const Dia& m, const value_t* x, value_t* y,
                    index_t row_begin, index_t row_end);

void spmv(const Dia& m, const value_t* x, value_t* y);

// ---------------------------------------------------------------- JDS ---

/// JDS kernel over a range [i_begin, i_end) of *permuted* row positions
/// (each thread owns a contiguous slice of the jagged index space and
/// therefore a disjoint set of y entries).
void spmv_jds_range(const Jds& m, const value_t* x, value_t* y,
                    index_t i_begin, index_t i_end);

void spmv(const Jds& m, const value_t* x, value_t* y);

// ------------------------------------------------------------- CSR-DU ---

/// Decodes and multiplies one ctl slice (Fig 3 of the paper, extended
/// with the RJMP/RLE1 unit types). Writes y only for rows in the slice.
void spmv(const CsrDu::Slice& s, const value_t* x, value_t* y);

inline void spmv(const CsrDu& m, const value_t* x, value_t* y) {
  spmv(m.full(), x, y);
}

/// Accumulating DU slice decode for the column-tiled stores: identical
/// decode loop, but each row's accumulator *starts from* y[row] and is
/// stored back at row end, and skipped/trailing rows are left untouched
/// (the tiled caller pre-zeroes the block's y rows once and runs the
/// block's tiles in ascending stripe order). Per-row element order
/// matches the untiled stream, so scalar results stay bit-identical.
void spmv_du_acc(const CsrDu::Slice& s, const value_t* x, value_t* y);

// ------------------------------------------------------------- CSR-VI ---

/// Row-range CSR-VI kernel (Fig 5 of the paper), templated on the value
/// index width.
template <typename IndT>
void spmv_csr_vi_range(const index_t* __restrict row_ptr,
                       const std::uint32_t* __restrict col_ind,
                       const IndT* __restrict val_ind,
                       const value_t* __restrict vals_unique,
                       const value_t* x, value_t* y, index_t row_begin,
                       index_t row_end) {
  for (index_t i = row_begin; i < row_end; ++i) {
    value_t acc = 0.0;
    const index_t end = row_ptr[i + 1];
    for (index_t j = row_ptr[i]; j < end; ++j) {
      acc += vals_unique[val_ind[j]] * x[col_ind[j]];
    }
    y[i] = acc;
  }
}

/// Width-dispatching row-range wrapper.
void spmv_csr_vi_range(const CsrVi& m, const value_t* x, value_t* y,
                       index_t row_begin, index_t row_end);

inline void spmv(const CsrVi& m, const value_t* x, value_t* y) {
  spmv_csr_vi_range(m, x, y, 0, m.nrows());
}

// ---------------------------------------------------------- CSR-DU-VI ---

/// DU slice decode with value indirection over raw arrays (the
/// scalar-dispatch entries); `s.val_offset` selects the starting position
/// in the val_ind stream.
void spmv_du_vi_slice(const CsrDu::Slice& s,
                      const std::uint8_t* val_ind,
                      const value_t* vals_unique, const value_t* x,
                      value_t* y);
void spmv_du_vi_slice(const CsrDu::Slice& s,
                      const std::uint16_t* val_ind,
                      const value_t* vals_unique, const value_t* x,
                      value_t* y);
void spmv_du_vi_slice(const CsrDu::Slice& s,
                      const std::uint32_t* val_ind,
                      const value_t* vals_unique, const value_t* x,
                      value_t* y);

/// Accumulating DU-VI decode (see spmv_du_acc) for the tiled stores.
void spmv_du_vi_acc_slice(const CsrDu::Slice& s,
                          const std::uint8_t* val_ind,
                          const value_t* vals_unique, const value_t* x,
                          value_t* y);
void spmv_du_vi_acc_slice(const CsrDu::Slice& s,
                          const std::uint16_t* val_ind,
                          const value_t* vals_unique, const value_t* x,
                          value_t* y);
void spmv_du_vi_acc_slice(const CsrDu::Slice& s,
                          const std::uint32_t* val_ind,
                          const value_t* vals_unique, const value_t* x,
                          value_t* y);

/// DU slice decode with value indirection. `slice.val_offset` selects the
/// starting position in the val_ind stream.
void spmv(const CsrDuVi& m, const CsrDu::Slice& s, const value_t* x,
          value_t* y);

inline void spmv(const CsrDuVi& m, const value_t* x, value_t* y) {
  spmv(m, m.du().full(), x, y);
}

// ------------------------------------------------------------ SYM-CSR ---

/// Unified symmetric row-range kernel (§III-C storage) with a bounded
/// conflict window (Batista et al., arXiv:1003.0952). For each row r in
/// [row_begin, row_end): acc = diag[r]*x[r] + the lower-triangle dot
/// product; the mirrored upper-triangle contribution v*x[r] scatters to
/// y[c] when c >= direct_begin, else into the compact window buffer at
/// win[c - win_begin]; the row ends with the *assignment* y[r] = acc.
/// The assignment is safe in every mode because scatters only target
/// columns strictly below the scattering row: no scatter ever lands on a
/// row of the range before that row's assignment.
///
/// Modes by parameterization (one kernel, bit-identical accumulation):
///   window  — direct_begin = row_begin: own-range scatters go straight
///             to the shared y, cross-thread conflicts into `win`.
///   private — direct_begin = 0, y = the thread's zeroed full-length
///             scratch: every scatter lands in the scratch; `win` is
///             never touched (may be nullptr).
///   serial  — direct_begin = 0 over the full range: scatters hit rows
///             already assigned, so y needs no pre-zeroing.
inline void spmv_sym_csr_win(const index_t* __restrict row_ptr,
                             const index_t* __restrict col_ind,
                             const value_t* __restrict values,
                             const value_t* __restrict diag,
                             const value_t* x, value_t* y,
                             value_t* __restrict win, index_t win_begin,
                             index_t direct_begin, index_t row_begin,
                             index_t row_end) {
  for (index_t r = row_begin; r < row_end; ++r) {
    value_t acc = diag[r] * x[r];
    const index_t end = row_ptr[r + 1];
    const value_t xr = x[r];
    for (index_t j = row_ptr[r]; j < end; ++j) {
      const index_t c = col_ind[j];
      const value_t v = values[j];
      acc += v * x[c];  // lower-triangle element (r, c)
      if (c >= direct_begin) {
        y[c] += v * xr;  // mirrored upper-triangle element (c, r)
      } else {
        win[c - win_begin] += v * xr;  // cross-thread conflict
      }
    }
    y[r] = acc;
  }
}

/// SymCsrVi variant: diagonal and lower-triangle values both resolve
/// through the shared unique-value table.
template <typename IndT>
void spmv_sym_csr_vi_win(const index_t* __restrict row_ptr,
                         const index_t* __restrict col_ind,
                         const IndT* __restrict val_ind,
                         const IndT* __restrict diag_ind,
                         const value_t* __restrict vals_unique,
                         const value_t* x, value_t* y,
                         value_t* __restrict win, index_t win_begin,
                         index_t direct_begin, index_t row_begin,
                         index_t row_end) {
  for (index_t r = row_begin; r < row_end; ++r) {
    value_t acc = vals_unique[diag_ind[r]] * x[r];
    const index_t end = row_ptr[r + 1];
    const value_t xr = x[r];
    for (index_t j = row_ptr[r]; j < end; ++j) {
      const index_t c = col_ind[j];
      const value_t v = vals_unique[val_ind[j]];
      acc += v * x[c];
      if (c >= direct_begin) {
        y[c] += v * xr;
      } else {
        win[c - win_begin] += v * xr;
      }
    }
    y[r] = acc;
  }
}

/// Serial kernels: y = A*x for the full (symmetric) matrix. No
/// zero-filling needed — every row is assigned and scatters only reach
/// already-assigned rows.
void spmv(const SymCsr& m, const value_t* x, value_t* y);
void spmv(const SymCsrVi& m, const value_t* x, value_t* y);

// --------------------------------------------------------------- DCSR ---

/// Command-stream decode of one slice (fine-grained; see dcsr.hpp).
void spmv(const Dcsr::Slice& s, const value_t* x, value_t* y);

inline void spmv(const Dcsr& m, const value_t* x, value_t* y) {
  spmv(m.full(), x, y);
}

}  // namespace spc
