#include "spc/spmv/sym_spmv.hpp"

#include <algorithm>
#include <cstring>

#include "spc/support/env.hpp"
#include "spc/support/topology.hpp"

namespace spc {

const char* sym_reduce_name(SymReduce r) {
  switch (r) {
    case SymReduce::kAuto:
      return "auto";
    case SymReduce::kWindow:
      return "window";
    case SymReduce::kPrivate:
      return "private";
  }
  return "auto";
}

bool parse_sym_reduce(const std::string& name, SymReduce* out) {
  if (name == "auto") {
    *out = SymReduce::kAuto;
    return true;
  }
  if (name == "window") {
    *out = SymReduce::kWindow;
    return true;
  }
  if (name == "private") {
    *out = SymReduce::kPrivate;
    return true;
  }
  return false;
}

SymReduce sym_reduce_from_env(SymReduce requested) {
  const auto v = env_str("SPC_SYM_REDUCE");
  if (!v) {
    return requested;
  }
  SymReduce r;
  if (parse_sym_reduce(*v, &r)) {
    return r;
  }
  env_warn_once("SPC_SYM_REDUCE", *v, "auto|window|private");
  return requested;
}

SymWindowPlan plan_sym_windows(const index_t* row_ptr,
                               const index_t* col_ind,
                               const RowPartition& partition,
                               std::size_t nthreads, index_t nrows,
                               SymReduce requested) {
  SymWindowPlan plan;
  plan.win_begin.resize(nthreads);
  for (std::size_t t = 0; t < nthreads; ++t) {
    const index_t b = partition.row_begin(t);
    const index_t e = partition.row_end(t);
    index_t wb = b;
    for (index_t r = b; r < e; ++r) {
      if (row_ptr[r] < row_ptr[r + 1]) {
        wb = std::min(wb, col_ind[row_ptr[r]]);
      }
    }
    plan.win_begin[t] = wb;
    plan.total_rows += static_cast<usize_t>(b - wb);
  }
  switch (requested) {
    case SymReduce::kWindow:
      plan.use_window = true;
      break;
    case SymReduce::kPrivate:
      plan.use_window = false;
      break;
    case SymReduce::kAuto:
      // The private sweep moves ~(2*nthreads+1)*nrows values per run
      // (zero + read each copy, write y); the windows move ~4x their
      // total span (zero, scatter, read, add). Cross over at half the
      // private figure so a borderline plan keeps a 2x margin.
      plan.use_window =
          plan.total_rows <=
          static_cast<usize_t>(nthreads) * static_cast<usize_t>(nrows) / 2;
      break;
  }
  return plan;
}

void spmv_sym_rows_raw(const index_t* row_ptr, const index_t* col_ind,
                       const value_t* values, const value_t* diag,
                       const value_t* x, value_t* y, index_t row_begin,
                       index_t row_end) {
  spmv_sym_csr_win(row_ptr, col_ind, values, diag, x, y, /*win=*/nullptr,
                   /*win_begin=*/0, /*direct_begin=*/0, row_begin, row_end);
}

void spmv_sym_rows(const SymCsr& m, const value_t* x, value_t* y,
                   index_t row_begin, index_t row_end) {
  spmv_sym_rows_raw(m.row_ptr().data(), m.col_ind().data(),
                    m.values().data(), m.diag().data(), x, y, row_begin,
                    row_end);
}

SymSpmv::SymSpmv(const Triplets& t, std::size_t nthreads, bool pin_threads,
                 NumaPolicy numa, SymReduce reduce)
    : m_(SymCsr::from_triplets(t)),
      nthreads_(std::max<std::size_t>(1, nthreads)) {
  if (nthreads_ <= 1) {
    return;
  }
  // Balance by stored (lower-triangle) elements.
  partition_ = partition_rows_by_nnz(m_.row_ptr(), nthreads_);
  plan_ = plan_sym_windows(m_.row_ptr().data(), m_.col_ind().data(),
                           partition_, nthreads_, m_.nrows(),
                           sym_reduce_from_env(reduce));
  reduce_mode_ = plan_.use_window ? SymReduce::kWindow : SymReduce::kPrivate;

  Topology topo;
  std::vector<int> plan;
  if (pin_threads) {
    topo = discover_topology();
    plan = plan_placement(topo, nthreads_, Placement::kCloseFirst);
  }
  pool_ = std::make_unique<ThreadPool>(nthreads_, plan);

  const auto buffer_len = [&](std::size_t th) -> usize_t {
    if (reduce_mode_ == SymReduce::kPrivate) {
      return m_.nrows();
    }
    return partition_.row_begin(th) - plan_.win_begin[th];
  };

  NumaPolicy policy = NumaPolicy::kOff;
  if (!plan.empty()) {
    policy = resolve_numa_policy(numa_policy_from_env(numa),
                                 topo.num_nodes());
  }
  if (policy == NumaPolicy::kOff) {
    scratch_.reserve(nthreads_);
    for (std::size_t th = 0; th < nthreads_; ++th) {
      scratch_.emplace_back(buffer_len(th), 0.0);
    }
    return;
  }

  // Repack each thread's row slice — rebased row_ptr, 0-based
  // col_ind/values, rebased diag — plus its window (or full private-y)
  // buffer into a block first-touched by the owner. Copies preserve
  // values and order exactly, so results stay bit-identical.
  const index_t* rp = m_.row_ptr().data();
  arena_ = std::make_unique<FirstTouchArena>(nthreads_);
  struct Plan {
    FirstTouchArena::Handle rp, ci, val, diag, scratch;
  };
  std::vector<Plan> ph(nthreads_);
  for (std::size_t th = 0; th < nthreads_; ++th) {
    const index_t b = partition_.row_begin(th);
    const index_t e = partition_.row_end(th);
    const usize_t nnz = rp[e] - rp[b];
    ph[th].rp = arena_->reserve<index_t>(th, e - b + 1);
    ph[th].ci = arena_->reserve<index_t>(th, nnz);
    ph[th].val = arena_->reserve<value_t>(th, nnz);
    ph[th].diag = arena_->reserve<value_t>(th, e - b);
    ph[th].scratch = arena_->reserve<value_t>(th, buffer_len(th));
  }
  arena_->allocate();
  pool_->run([&](std::size_t th) { arena_->first_touch(th); });
  numa_.resize(nthreads_);
  for (std::size_t th = 0; th < nthreads_; ++th) {
    const index_t b = partition_.row_begin(th);
    const index_t e = partition_.row_end(th);
    const usize_t nnz = rp[e] - rp[b];
    index_t* lrp = arena_->data<index_t>(ph[th].rp);
    for (index_t i = b; i <= e; ++i) {
      lrp[i - b] = rp[i] - rp[b];
    }
    numa_[th].row_ptr = rebase_ptr<const index_t>(lrp, b);
    index_t* lci = arena_->data<index_t>(ph[th].ci);
    std::memcpy(lci, m_.col_ind().data() + rp[b], nnz * sizeof(index_t));
    numa_[th].col_ind = lci;
    value_t* lv = arena_->data<value_t>(ph[th].val);
    std::memcpy(lv, m_.values().data() + rp[b], nnz * sizeof(value_t));
    numa_[th].values = lv;
    value_t* ld = arena_->data<value_t>(ph[th].diag);
    std::memcpy(ld, m_.diag().data() + b, (e - b) * sizeof(value_t));
    numa_[th].diag = rebase_ptr<const value_t>(ld, b);
    numa_[th].scratch = arena_->data<value_t>(ph[th].scratch);
  }
  numa_policy_ = policy;
}

void SymSpmv::run(const Vector& x, Vector& y) {
  SPC_CHECK_MSG(x.size() == m_.nrows() && y.size() == m_.nrows(),
                "dimension mismatch");
  if (nthreads_ == 1) {
    spmv(m_, x.data(), y.data());
    return;
  }
  const index_t nrows = m_.nrows();
  const value_t* const xp = x.data();
  value_t* const yp = y.data();
  const index_t* const rp0 = m_.row_ptr().data();
  const index_t* const ci0 = m_.col_ind().data();
  const value_t* const val0 = m_.values().data();
  const value_t* const diag0 = m_.diag().data();

  if (reduce_mode_ == SymReduce::kWindow) {
    pool_->run([&](std::size_t th) {
      const index_t b = partition_.row_begin(th);
      const index_t e = partition_.row_end(th);
      value_t* const win = scratch_ptr(th);
      const index_t wb = plan_.win_begin[th];
      std::fill(win, win + (b - wb), 0.0);
      if (numa_.empty()) {
        spmv_sym_csr_win(rp0, ci0, val0, diag0, xp, yp, win, wb,
                         /*direct_begin=*/b, b, e);
      } else {
        const ThreadArrays& a = numa_[th];
        spmv_sym_csr_win(a.row_ptr, a.col_ind, a.values, a.diag, xp, yp,
                         win, wb, /*direct_begin=*/b, b, e);
      }
    });
    if (plan_.total_rows == 0) {
      return;  // no conflicts at all — nothing to reduce
    }
    // Each thread folds the overlapping windows into the compute rows it
    // just wrote (cache/NUMA-local). Windows are folded in ascending
    // thread order so the accumulation order is deterministic.
    pool_->run([&](std::size_t th) {
      const index_t r0 = partition_.row_begin(th);
      const index_t r1 = partition_.row_end(th);
      for (std::size_t t = 1; t < nthreads_; ++t) {
        const index_t wb = plan_.win_begin[t];
        const index_t we = partition_.row_begin(t);
        const index_t lo = std::max(r0, wb);
        const index_t hi = std::min(r1, we);
        if (lo >= hi) {
          continue;
        }
        const value_t* const win = scratch_ptr(t);
        for (index_t r = lo; r < hi; ++r) {
          yp[r] += win[r - wb];
        }
      }
    });
    return;
  }

  // Private-y fallback: every scatter lands in the thread's full-length
  // scratch, then an even row split sums the copies.
  pool_->run([&](std::size_t th) {
    value_t* const sp = scratch_ptr(th);
    std::fill(sp, sp + nrows, 0.0);
    if (numa_.empty()) {
      spmv_sym_csr_win(rp0, ci0, val0, diag0, xp, sp, /*win=*/nullptr,
                       /*win_begin=*/0, /*direct_begin=*/0,
                       partition_.row_begin(th), partition_.row_end(th));
    } else {
      const ThreadArrays& a = numa_[th];
      spmv_sym_csr_win(a.row_ptr, a.col_ind, a.values, a.diag, xp, sp,
                       /*win=*/nullptr, /*win_begin=*/0, /*direct_begin=*/0,
                       partition_.row_begin(th), partition_.row_end(th));
    }
  });
  const RowPartition rows = partition_rows_even(nrows, nthreads_);
  pool_->run([&](std::size_t th) {
    const index_t r0 = rows.row_begin(th);
    const index_t r1 = rows.row_end(th);
    std::fill(yp + r0, yp + r1, 0.0);
    for (std::size_t s = 0; s < nthreads_; ++s) {
      const value_t* const sp = scratch_ptr(s);
      for (index_t r = r0; r < r1; ++r) {
        yp[r] += sp[r];
      }
    }
  });
}

}  // namespace spc
