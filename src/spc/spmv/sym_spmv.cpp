#include "spc/spmv/sym_spmv.hpp"

#include <algorithm>
#include <cstring>

#include "spc/support/topology.hpp"

namespace spc {

void spmv_sym_rows_raw(const index_t* row_ptr, const index_t* col_ind,
                       const value_t* values, const value_t* diag,
                       const value_t* x, value_t* y, index_t row_begin,
                       index_t row_end) {
  for (index_t r = row_begin; r < row_end; ++r) {
    value_t acc = diag[r] * x[r];
    const index_t end = row_ptr[r + 1];
    const value_t xr = x[r];
    for (index_t j = row_ptr[r]; j < end; ++j) {
      const index_t c = col_ind[j];
      const value_t v = values[j];
      acc += v * x[c];   // lower-triangle element (r, c)
      y[c] += v * xr;    // mirrored upper-triangle element (c, r)
    }
    y[r] += acc;
  }
}

void spmv_sym_rows(const SymCsr& m, const value_t* x, value_t* y,
                   index_t row_begin, index_t row_end) {
  spmv_sym_rows_raw(m.row_ptr().data(), m.col_ind().data(),
                    m.values().data(), m.diag().data(), x, y, row_begin,
                    row_end);
}

void spmv(const SymCsr& m, const value_t* x, value_t* y) {
  std::fill(y, y + m.nrows(), 0.0);
  spmv_sym_rows(m, x, y, 0, m.nrows());
}

SymSpmv::SymSpmv(const Triplets& t, std::size_t nthreads, bool pin_threads,
                 NumaPolicy numa)
    : m_(SymCsr::from_triplets(t)), nthreads_(std::max<std::size_t>(1, nthreads)) {
  if (nthreads_ <= 1) {
    return;
  }
  // Balance by stored (lower-triangle) elements.
  partition_ = partition_rows_by_nnz(m_.row_ptr(), nthreads_);
  Topology topo;
  std::vector<int> plan;
  if (pin_threads) {
    topo = discover_topology();
    plan = plan_placement(topo, nthreads_, Placement::kCloseFirst);
  }
  pool_ = std::make_unique<ThreadPool>(nthreads_, plan);

  NumaPolicy policy = NumaPolicy::kOff;
  if (!plan.empty()) {
    policy = resolve_numa_policy(numa_policy_from_env(numa),
                                 topo.num_nodes());
  }
  if (policy == NumaPolicy::kOff) {
    scratch_.assign(nthreads_, Vector(m_.nrows(), 0.0));
    return;
  }

  // Repack each thread's row slice — rebased row_ptr, 0-based
  // col_ind/values, rebased diag — plus its full-length private-y
  // scratch into a block first-touched by the owner. Copies preserve
  // values and order exactly, so results stay bit-identical.
  const index_t nrows = m_.nrows();
  const index_t* rp = m_.row_ptr().data();
  arena_ = std::make_unique<FirstTouchArena>(nthreads_);
  struct Plan {
    FirstTouchArena::Handle rp, ci, val, diag, scratch;
  };
  std::vector<Plan> ph(nthreads_);
  for (std::size_t th = 0; th < nthreads_; ++th) {
    const index_t b = partition_.row_begin(th);
    const index_t e = partition_.row_end(th);
    const usize_t nnz = rp[e] - rp[b];
    ph[th].rp = arena_->reserve<index_t>(th, e - b + 1);
    ph[th].ci = arena_->reserve<index_t>(th, nnz);
    ph[th].val = arena_->reserve<value_t>(th, nnz);
    ph[th].diag = arena_->reserve<value_t>(th, e - b);
    ph[th].scratch = arena_->reserve<value_t>(th, nrows);
  }
  arena_->allocate();
  pool_->run([&](std::size_t th) { arena_->first_touch(th); });
  numa_.resize(nthreads_);
  for (std::size_t th = 0; th < nthreads_; ++th) {
    const index_t b = partition_.row_begin(th);
    const index_t e = partition_.row_end(th);
    const usize_t nnz = rp[e] - rp[b];
    index_t* lrp = arena_->data<index_t>(ph[th].rp);
    for (index_t i = b; i <= e; ++i) {
      lrp[i - b] = rp[i] - rp[b];
    }
    numa_[th].row_ptr = rebase_ptr<const index_t>(lrp, b);
    index_t* lci = arena_->data<index_t>(ph[th].ci);
    std::memcpy(lci, m_.col_ind().data() + rp[b], nnz * sizeof(index_t));
    numa_[th].col_ind = lci;
    value_t* lv = arena_->data<value_t>(ph[th].val);
    std::memcpy(lv, m_.values().data() + rp[b], nnz * sizeof(value_t));
    numa_[th].values = lv;
    value_t* ld = arena_->data<value_t>(ph[th].diag);
    std::memcpy(ld, m_.diag().data() + b, (e - b) * sizeof(value_t));
    numa_[th].diag = rebase_ptr<const value_t>(ld, b);
    numa_[th].scratch = arena_->data<value_t>(ph[th].scratch);
  }
  numa_policy_ = policy;
}

void SymSpmv::run(const Vector& x, Vector& y) {
  SPC_CHECK_MSG(x.size() == m_.nrows() && y.size() == m_.nrows(),
                "dimension mismatch");
  if (nthreads_ == 1) {
    spmv(m_, x.data(), y.data());
    return;
  }
  const index_t nrows = m_.nrows();
  const value_t* const xp = x.data();
  value_t* const yp = y.data();
  pool_->run([&](std::size_t th) {
    value_t* const sp =
        numa_.empty() ? scratch_[th].data() : numa_[th].scratch;
    std::fill(sp, sp + nrows, 0.0);
    if (numa_.empty()) {
      spmv_sym_rows(m_, xp, sp, partition_.row_begin(th),
                    partition_.row_end(th));
    } else {
      const ThreadArrays& a = numa_[th];
      spmv_sym_rows_raw(a.row_ptr, a.col_ind, a.values, a.diag, xp, sp,
                        partition_.row_begin(th), partition_.row_end(th));
    }
  });
  const RowPartition rows = partition_rows_even(nrows, nthreads_);
  pool_->run([&](std::size_t th) {
    const index_t r0 = rows.row_begin(th);
    const index_t r1 = rows.row_end(th);
    std::fill(yp + r0, yp + r1, 0.0);
    for (std::size_t s = 0; s < nthreads_; ++s) {
      const value_t* const sp =
          numa_.empty() ? scratch_[s].data() : numa_[s].scratch;
      for (index_t r = r0; r < r1; ++r) {
        yp[r] += sp[r];
      }
    }
  });
}

}  // namespace spc
