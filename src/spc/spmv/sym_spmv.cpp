#include "spc/spmv/sym_spmv.hpp"

#include <algorithm>

#include "spc/support/topology.hpp"

namespace spc {

void spmv_sym_rows(const SymCsr& m, const value_t* x, value_t* y,
                   index_t row_begin, index_t row_end) {
  const index_t* const __restrict row_ptr = m.row_ptr().data();
  const index_t* const __restrict col_ind = m.col_ind().data();
  const value_t* const __restrict values = m.values().data();
  const value_t* const __restrict diag = m.diag().data();
  for (index_t r = row_begin; r < row_end; ++r) {
    value_t acc = diag[r] * x[r];
    const index_t end = row_ptr[r + 1];
    const value_t xr = x[r];
    for (index_t j = row_ptr[r]; j < end; ++j) {
      const index_t c = col_ind[j];
      const value_t v = values[j];
      acc += v * x[c];   // lower-triangle element (r, c)
      y[c] += v * xr;    // mirrored upper-triangle element (c, r)
    }
    y[r] += acc;
  }
}

void spmv(const SymCsr& m, const value_t* x, value_t* y) {
  std::fill(y, y + m.nrows(), 0.0);
  spmv_sym_rows(m, x, y, 0, m.nrows());
}

SymSpmv::SymSpmv(const Triplets& t, std::size_t nthreads, bool pin_threads)
    : m_(SymCsr::from_triplets(t)), nthreads_(std::max<std::size_t>(1, nthreads)) {
  if (nthreads_ > 1) {
    // Balance by stored (lower-triangle) elements.
    partition_ = partition_rows_by_nnz(m_.row_ptr(), nthreads_);
    scratch_.assign(nthreads_, Vector(m_.nrows(), 0.0));
    std::vector<int> plan;
    if (pin_threads) {
      plan = plan_placement(discover_topology(), nthreads_,
                            Placement::kCloseFirst);
    }
    pool_ = std::make_unique<ThreadPool>(nthreads_, plan);
  }
}

void SymSpmv::run(const Vector& x, Vector& y) {
  SPC_CHECK_MSG(x.size() == m_.nrows() && y.size() == m_.nrows(),
                "dimension mismatch");
  if (nthreads_ == 1) {
    spmv(m_, x.data(), y.data());
    return;
  }
  const value_t* const xp = x.data();
  value_t* const yp = y.data();
  pool_->run([&](std::size_t th) {
    Vector& s = scratch_[th];
    std::fill(s.begin(), s.end(), 0.0);
    spmv_sym_rows(m_, xp, s.data(), partition_.row_begin(th),
                  partition_.row_end(th));
  });
  const RowPartition rows = partition_rows_even(m_.nrows(), nthreads_);
  pool_->run([&](std::size_t th) {
    const index_t r0 = rows.row_begin(th);
    const index_t r1 = rows.row_end(th);
    std::fill(yp + r0, yp + r1, 0.0);
    for (const Vector& s : scratch_) {
      const value_t* const sp = s.data();
      for (index_t r = r0; r < r1; ++r) {
        yp[r] += sp[r];
      }
    }
  });
}

}  // namespace spc
