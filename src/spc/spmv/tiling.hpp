// Column tiling (cache blocking) for the row-partitioned SpMV formats.
//
// The paper's compressed formats shrink the matrix streams, but for
// graph-class matrices the remaining cost is irregular gathers into x
// that miss every cache level (the bound analysis of Schubert et al.;
// the blocking approaches of Bergmans et al. — see PAPERS.md). Column
// tiling splits each execution block's rows into vertical stripes of
// ~L1d-sized column span and runs the stripes in ascending column
// order, so all x gathers of one stripe hit a cache-resident window.
//
// For CSR-DU the stripes are a double win: a unit's column deltas are
// bounded by the stripe width, so narrow stripes push units into the
// u8 delta class — compression and locality reinforce each other
// (bench/ablation_tiling measures both axes).
//
// Layout. The tiled store replaces the matrix's execution arrays:
//
//  * CSR / CSR-VI: the block's non-zeros are stably re-ordered
//    stripe-major (stripe, then original row-major order within the
//    stripe) and cut into *segments* — maximal per-(row, stripe) runs.
//    Executing the block's segments in order visits stripes ascending;
//    each segment accumulates into its row's y entry (y is pre-zeroed
//    per block), reproducing the untiled left-to-right per-row sum
//    exactly at the scalar tier.
//  * CSR-DU(-VI): each (block, stripe) tile is re-encoded as its own
//    ctl stream with block-local rows and *stripe-local* columns —
//    deltas restart small at every stripe boundary. The kernel gets
//    x + stripe base and y + block base.
//
// Stripes within a block execute on one worker in column order, so the
// partial-y accumulation needs no atomics; dynamic schedules move whole
// blocks (chunks), never single stripes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "spc/formats/csr_du.hpp"
#include "spc/mm/triplets.hpp"
#include "spc/support/aligned.hpp"
#include "spc/support/types.hpp"

namespace spc {

/// Tiling selection (InstanceOptions::tiling / SPC_TILE).
enum class TileMode : std::uint8_t {
  kAuto = 0,  ///< engage only when profitable (default; zero overhead off)
  kOff = 1,   ///< never tile
  kForced = 2 ///< always tile, stripe width from TileConfig::stripe_bytes
};

struct TileConfig {
  TileMode mode = TileMode::kAuto;
  /// Stripe width as bytes of x covered (kForced only; kAuto sizes from
  /// the discovered L1d). Rounded down to whole x elements, min one.
  std::size_t stripe_bytes = 0;
};

/// Canonical form: "auto", "off", or the byte count ("16384").
std::string tile_config_name(const TileConfig& cfg);

/// Parses "auto" | "off" | "<bytes>" (decimal, optional k/K/m/M suffix).
/// Returns false on unparseable input, leaving *out untouched.
bool parse_tile_config(const std::string& s, TileConfig* out);

/// `cfg` overridden by the SPC_TILE environment variable when set. An
/// unparseable value is diagnosed once to stderr and ignored.
TileConfig tile_config_from_env(const TileConfig& cfg);

/// The resolved tiling decision for one matrix.
struct TilePlan {
  bool active = false;
  index_t stripe_cols = 0;       ///< x elements per stripe (>= 1)
  index_t nstripes = 0;          ///< ceil(ncols / stripe_cols)
  std::size_t stripe_bytes = 0;  ///< stripe_cols * sizeof(value_t)
  /// Why an auto request declined ("" when active or mode off).
  const char* decline_reason = "";
};

/// Decides whether and how to tile.
///
/// Forced widths always engage (even a single stripe — the caller asked
/// for the layout). Auto engages only when the stripes can pay for the
/// re-ordered storage:
///  * x must overflow the cache: ncols * sizeof(value_t) greater than
///    2 * max(l2_bytes, 256 KiB) — otherwise the gathers already hit;
///  * at least two stripes must result;
///  * the nnz-weighted mean row column-span must exceed twice the
///    stripe width — banded matrices already gather from a narrow,
///    resident window, so striping only adds segment overhead.
/// Auto stripe width: clamp(l1d_bytes / 2, 8 KiB, 256 KiB), defaulting
/// to 16 KiB when the topology exposes no L1d size. Half the L1d leaves
/// room for the y rows, the value stream, and the ctl/index stream that
/// compete for the same set.
TilePlan plan_tiles(const TileConfig& cfg, index_t nrows, index_t ncols,
                    usize_t nnz, double mean_row_span_cols,
                    std::size_t l1d_bytes, std::size_t l2_bytes);

/// nnz-weighted mean column span of the rows of `t` (0 when empty):
/// sum_r nnz_r * (max_col_r - min_col_r + 1) / nnz. The banded-matrix
/// decline test of plan_tiles. O(nnz) over the sorted triplets.
double mean_row_span_cols(const Triplets& t);

// ------------------------------------------------------------------------
// Tiled storage
// ------------------------------------------------------------------------

/// One (block, stripe) tile. CSR-family tiles are segment ranges into
/// TiledStore::seg_*; DU-family tiles are byte ranges into ctl.
struct StripeTile {
  index_t x_base = 0;      ///< stripe * stripe_cols (x offset, DU kernels)
  usize_t seg_begin = 0;   ///< CSR family: [seg_begin, seg_end) segments
  usize_t seg_end = 0;
  usize_t ctl_begin = 0;   ///< DU family: [ctl_begin, ctl_end) ctl bytes
  usize_t ctl_end = 0;
  usize_t val_begin = 0;   ///< first element in the tiled (stripe-major) order
  usize_t nnz = 0;
};

/// One execution block: a row range (a thread's partition range, or one
/// chunk under the dynamic schedules) and its tiles/segments/elements.
/// Blocks tile the row space in order, so a worker's blocks cover
/// contiguous segment/ctl/element ranges — the NUMA repack copies each
/// worker's spans into its first-touched arena block.
struct TileBlock {
  index_t row_begin = 0;
  index_t row_end = 0;
  usize_t tile_begin = 0;  ///< [tile_begin, tile_end) in TiledStore::tiles
  usize_t tile_end = 0;
  usize_t seg_begin = 0;   ///< CSR family: the block's whole segment range
  usize_t seg_end = 0;
  usize_t ctl_begin = 0;   ///< DU family: the block's ctl byte range
  usize_t ctl_end = 0;
  usize_t val_begin = 0;   ///< the block's element range in tiled order
  usize_t nnz = 0;
};

/// The stripe-major execution arrays. Only the family's arrays are
/// populated (seg_*/col for CSR-shaped, ctl for DU-shaped; val and vi
/// per the value representation).
struct TiledStore {
  std::vector<TileBlock> blocks;
  std::vector<StripeTile> tiles;
  // CSR family. seg_ptr[s] / seg_ptr[s+1] bound segment s's elements in
  // col/val/vi; seg_row[s] is its absolute row.
  aligned_vector<index_t> seg_ptr;        ///< nsegs + 1 entries
  aligned_vector<index_t> seg_row;
  aligned_vector<std::uint32_t> col;      ///< absolute columns, tiled order
  // DU family: concatenated per-tile ctl streams (block-local rows,
  // stripe-local columns).
  aligned_vector<std::uint8_t> ctl;
  // Values in tiled order (CSR, CSR-DU); empty for the VI variants.
  aligned_vector<value_t> val;
  // Value-index bytes in tiled order (CSR-VI, CSR-DU-VI).
  aligned_vector<std::uint8_t> vi;
  std::size_t vi_elem = 0;                ///< bytes per value index
  /// Aggregated unit histogram over the tile ctl streams (DU family):
  /// the stripe-local deltas this store actually decodes, which is what
  /// the SIMD-engagement gate and ablation_tiling should see.
  CsrDu::UnitHistogram du_hist;
  bool has_du_hist = false;

  usize_t nsegments() const {
    return seg_ptr.empty() ? 0 : seg_ptr.size() - 1;
  }

  /// Matrix-data footprint of the tiled arrays (compression reporting).
  usize_t bytes() const {
    return seg_ptr.size() * sizeof(index_t) +
           seg_row.size() * sizeof(index_t) +
           col.size() * sizeof(std::uint32_t) + ctl.size() +
           val.size() * sizeof(value_t) + vi.size();
  }
};

/// What build_tiled_store materializes.
struct TiledStoreSpec {
  bool du = false;             ///< DU ctl streams instead of segments
  CsrDuOptions du_opts;        ///< tile encoder knobs (du only)
  bool values = true;          ///< copy values into tiled order
  std::size_t vi_elem = 0;     ///< when > 0, permute vi bytes from vi_src
  const std::uint8_t* vi_src = nullptr;  ///< matrix val_ind stream
};

/// Builds the tiled store for sorted triplets `t` over the execution
/// blocks bounds[i]..bounds[i+1] (non-decreasing, covering [0, nrows)).
/// Element k of `t` corresponds to val_ind position k of the CSR-VI /
/// CSR-DU-VI encodings (both assign indices in row-major order), which
/// is what lets vi_src be permuted instead of re-encoded. O(nnz + blocks
/// * nstripes); runs once at instance setup, off the timed path.
TiledStore build_tiled_store(const Triplets& t,
                             const std::vector<index_t>& bounds,
                             const TilePlan& plan,
                             const TiledStoreSpec& spec);

}  // namespace spc
