#include "spc/spmv/instance.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <thread>
#include <tuple>
#include <utility>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "spc/obs/metrics_io.hpp"
#include "spc/obs/trace.hpp"
#include "spc/spmv/kernels.hpp"
#include "spc/support/strutil.hpp"
#include "spc/support/timing.hpp"

namespace spc {

bool openmp_available() {
#ifdef _OPENMP
  return true;
#else
  return false;
#endif
}

void SpmvInstance::dispatch(const std::function<void(std::size_t)>& body) {
#ifdef _OPENMP
  if (opts_.backend == Backend::kOpenMP) {
    const int n = static_cast<int>(nthreads_);
#pragma omp parallel num_threads(n)
    { body(static_cast<std::size_t>(omp_get_thread_num())); }
    return;
  }
#endif
  xpool_->run(body);
}

void SpmvInstance::dispatch_raw(ThreadPool::RawJob fn) {
  xpool_->run(fn, this);
}

void SpmvInstance::xcopy_job(void* ctx, std::size_t tid) {
  auto* self = static_cast<SpmvInstance*>(ctx);
  self->numa_x_copy_[tid](self->run_args_.x);
}

void SpmvInstance::static_job(void* ctx, std::size_t tid) {
  auto* self = static_cast<SpmvInstance*>(ctx);
  self->binding_.per_thread[tid](self->worker_x(tid), self->run_args_.y);
}

void SpmvInstance::chunked_job(void* ctx, std::size_t tid) {
  auto* self = static_cast<SpmvInstance*>(ctx);
  const value_t* const x = self->worker_x(tid);
  value_t* const y = self->run_args_.y;
  const std::uint32_t b = self->chunk_plan_.owner_begin[tid];
  const std::uint32_t e = self->chunk_plan_.owner_begin[tid + 1];
  for (std::uint32_t c = b; c < e; ++c) {
    self->binding_.per_chunk[c](x, y);
  }
  self->sched_slots_[tid].executed += e - b;
}

void SpmvInstance::steal_job(void* ctx, std::size_t tid) {
  auto* self = static_cast<SpmvInstance*>(ctx);
  const value_t* const x = self->worker_x(tid);
  value_t* const y = self->run_args_.y;
  std::uint64_t executed = 0;
  std::uint64_t stolen = 0;
  std::uint32_t c = 0;
  // Own chunks first, in ascending row order (streaming locality).
  while (self->deques_[tid].take(&c)) {
    self->binding_.per_chunk[c](x, y);
    ++executed;
  }
  // Then sweep victims — NUMA-near ones first (steal_victims_ order),
  // draining each before moving on. A kContended result means somebody
  // is still active on that deque, so the sweep must run again: only a
  // full pass of kEmpty proves there is no work left anywhere.
  const std::vector<std::uint32_t>& victims = self->steal_victims_[tid];
  bool again = true;
  while (again) {
    again = false;
    bool got_any = false;
    for (const std::uint32_t v : victims) {
      for (;;) {
        const ChunkDeque::Steal r = self->deques_[v].steal(&c);
        if (r == ChunkDeque::Steal::kGot) {
          self->binding_.per_chunk[c](x, y);
          ++executed;
          ++stolen;
          got_any = true;
          continue;
        }
        if (r == ChunkDeque::Steal::kContended) {
          again = true;
        }
        break;
      }
    }
    // A fruitless contended pass means the remaining work is being
    // drained by others; give the CPU away instead of spinning on their
    // deques (on oversubscribed hosts the spin starves the very workers
    // holding the chunks).
    if (again && !got_any) {
      std::this_thread::yield();
    }
  }
  SchedSlot& slot = self->sched_slots_[tid];
  slot.executed += executed;
  slot.stolen += stolen;
  if (stolen != 0) {
    self->sched_steals_counter_->add(stolen);
  }
}

void SpmvInstance::sym_compute_job(void* ctx, std::size_t tid) {
  auto* self = static_cast<SpmvInstance*>(ctx);
  // Zero this worker's conflict window (or full private scratch) before
  // its rows run; the kernels accumulate into it.
  if (self->sym_reduce_ == SymReduce::kWindow) {
    value_t* const win = self->sym_win_ptr_[tid];
    const index_t len = self->partition_.row_begin(tid) -
                        self->sym_plan_.win_begin[tid];
    std::fill(win, win + len, 0.0);
  } else {
    Vector& s = self->csc_scratch_[tid];
    std::fill(s.begin(), s.end(), 0.0);
  }
  const value_t* const x = self->worker_x(tid);
  value_t* const y = self->run_args_.y;
  if (self->sched_ != Schedule::kStatic &&
      !self->binding_.per_chunk.empty()) {
    // kChunked only: every chunk stays on its owner (ascending row
    // order), so the window writes match the static schedule exactly.
    const std::uint32_t b = self->chunk_plan_.owner_begin[tid];
    const std::uint32_t e = self->chunk_plan_.owner_begin[tid + 1];
    for (std::uint32_t c = b; c < e; ++c) {
      self->binding_.per_chunk[c](x, y);
    }
    self->sched_slots_[tid].executed += e - b;
  } else {
    self->binding_.per_thread[tid](x, y);
  }
}

void SpmvInstance::sym_reduce_job(void* ctx, std::size_t tid) {
  auto* self = static_cast<SpmvInstance*>(ctx);
  value_t* const y = self->run_args_.y;
  if (self->sym_reduce_ == SymReduce::kWindow) {
    // Fold the overlapping windows into this worker's own compute rows
    // (cache/NUMA-local — it just wrote them). Ascending thread order
    // keeps the accumulation deterministic. Thread 0's window is always
    // empty (nothing below row 0), so the fold starts at 1.
    const index_t r0 = self->partition_.row_begin(tid);
    const index_t r1 = self->partition_.row_end(tid);
    for (std::size_t t = 1; t < self->nthreads_; ++t) {
      const index_t wb = self->sym_plan_.win_begin[t];
      const index_t we = self->partition_.row_begin(t);
      const index_t lo = std::max(r0, wb);
      const index_t hi = std::min(r1, we);
      if (lo >= hi) {
        continue;
      }
      const value_t* const win = self->sym_win_ptr_[t];
      for (index_t r = lo; r < hi; ++r) {
        y[r] += win[r - wb];
      }
    }
  } else {
    // Private-y fallback: even row split sums the full-length copies.
    const index_t r0 = self->csc_reduce_rows_.row_begin(tid);
    const index_t r1 = self->csc_reduce_rows_.row_end(tid);
    std::fill(y + r0, y + r1, 0.0);
    for (const Vector& s : self->csc_scratch_) {
      const value_t* const sp = s.data();
      for (index_t r = r0; r < r1; ++r) {
        y[r] += sp[r];
      }
    }
  }
}

std::string format_name(Format f) {
  switch (f) {
    case Format::kCsr:
      return "csr";
    case Format::kCsr16:
      return "csr16";
    case Format::kCoo:
      return "coo";
    case Format::kCsc:
      return "csc";
    case Format::kBcsr:
      return "bcsr";
    case Format::kEll:
      return "ell";
    case Format::kDia:
      return "dia";
    case Format::kJds:
      return "jds";
    case Format::kCsrDu:
      return "csr-du";
    case Format::kCsrDuRle:
      return "csr-du-rle";
    case Format::kCsrVi:
      return "csr-vi";
    case Format::kCsrDuVi:
      return "csr-du-vi";
    case Format::kDcsr:
      return "dcsr";
    case Format::kSymCsr:
      return "sym-csr";
    case Format::kSymCsrVi:
      return "sym-csr-vi";
  }
  return "?";
}

Format parse_format(const std::string& name) {
  const std::string n = to_lower(name);
  for (const Format f : all_formats()) {
    if (format_name(f) == n) {
      return f;
    }
  }
  throw InvalidArgument("unknown format: " + name);
}

const std::vector<Format>& all_formats() {
  static const std::vector<Format> kAll = {
      Format::kCsr,      Format::kCsr16, Format::kCoo,
      Format::kCsc,      Format::kBcsr,  Format::kEll,
      Format::kDia,      Format::kJds,   Format::kCsrDu,
      Format::kCsrDuRle, Format::kCsrVi, Format::kCsrDuVi,
      Format::kDcsr,     Format::kSymCsr, Format::kSymCsrVi,
  };
  return kAll;
}

bool format_requires_symmetry(Format f) {
  return f == Format::kSymCsr || f == Format::kSymCsrVi;
}

SpmvInstance::~SpmvInstance() = default;
SpmvInstance::SpmvInstance(SpmvInstance&&) noexcept = default;

Status InstanceOptions::validate() const {
  if (bcsr_block_rows < 1 || bcsr_block_cols < 1) {
    return Status::Invalid(
        "bcsr_block_rows/cols must be >= 1 (got " +
        std::to_string(bcsr_block_rows) + "x" +
        std::to_string(bcsr_block_cols) + ")");
  }
  if (!std::isfinite(ell_max_width_factor) || ell_max_width_factor < 0.0) {
    return Status::Invalid(
        "ell_max_width_factor must be a finite factor >= 0 (0 = "
        "unguarded), got " +
        std::to_string(ell_max_width_factor));
  }
  if (tiling.mode == TileMode::kForced && tiling.stripe_bytes == 0) {
    return Status::Invalid(
        "a forced tile stripe needs a byte width (stripe_bytes == 0; "
        "use TileMode::kAuto for a derived width)");
  }
  return Status::Ok();
}

void SpmvInstance::note_decision(const std::string& aspect,
                                 const std::string& requested,
                                 const std::string& resolved,
                                 const std::string& reason) {
  for (const InstanceDecision& d : decisions_) {
    if (d.aspect == aspect && d.resolved == resolved &&
        d.reason == reason) {
      return;
    }
  }
  decisions_.push_back({aspect, requested, resolved, reason});
}

SpmvInstance::SpmvInstance(const Triplets& t, Format format,
                           std::size_t nthreads,
                           const InstanceOptions& opts)
    : format_(format), nthreads_(nthreads), opts_(opts) {
  init(t);
}

SpmvInstance::SpmvInstance(const Triplets& t, Format format,
                           std::shared_ptr<ThreadPool> pool,
                           const InstanceOptions& opts)
    : format_(format),
      nthreads_(pool != nullptr ? pool->size() : 0),
      opts_(opts),
      shared_pool_(std::move(pool)) {
  SPC_CHECK_MSG(shared_pool_ != nullptr,
                "shared-pool SpmvInstance requires a pool");
  // The pool already exists, so the knobs that shape pool construction
  // don't apply; everything else (schedule, tiling, NUMA, ...) does.
  opts_.backend = Backend::kPool;
  init(t);
}

void SpmvInstance::init(const Triplets& t) {
  const std::size_t nthreads = nthreads_;
  const Format format = format_;
  SPC_CHECK_MSG(nthreads >= 1, "nthreads must be >= 1");
  SPC_CHECK_MSG(t.is_sorted_unique(),
                "SpmvInstance requires sorted/combined triplets");
  if (const Status st = opts_.validate(); !st.ok()) {
    throw InvalidArgument("InstanceOptions: " + st.message());
  }
  nrows_ = t.nrows();
  ncols_ = t.ncols();
  nnz_ = t.nnz();
  runs_counter_ = &obs::Registry::global().counter("spc.spmv.runs");
  run_histo_ = &obs::Registry::global().histogram("spc.spmv.run_ns");

  // Covers encoding plus partitioning/slicing below.
  obs::TraceSpan prepare_span("prepare:" + format_name(format));

  // Encode the matrix.
  switch (format) {
    case Format::kCsr:
      matrix_.emplace<Csr>(Csr::from_triplets(t));
      break;
    case Format::kCsr16:
      SPC_CHECK_MSG(csr16_applicable(t),
                    "csr16 requires ncols <= 65536");
      matrix_.emplace<Csr16>(Csr16::from_triplets(t));
      break;
    case Format::kCoo:
      matrix_.emplace<Coo>(Coo::from_triplets(t));
      break;
    case Format::kCsc:
      matrix_.emplace<Csc>(Csc::from_triplets(t));
      break;
    case Format::kBcsr:
      matrix_.emplace<Bcsr>(Bcsr::from_triplets(t, opts_.bcsr_block_rows,
                                                opts_.bcsr_block_cols));
      break;
    case Format::kEll:
      matrix_.emplace<Ell>(
          Ell::from_triplets(t, opts_.ell_max_width_factor));
      break;
    case Format::kDia:
      matrix_.emplace<Dia>(Dia::from_triplets(t, opts_.dia_max_diags));
      break;
    case Format::kJds:
      matrix_.emplace<Jds>(Jds::from_triplets(t));
      break;
    case Format::kCsrDu: {
      CsrDuOptions du = opts_.du;
      du.enable_rle = false;
      matrix_.emplace<CsrDu>(CsrDu::from_triplets(t, du));
      break;
    }
    case Format::kCsrDuRle: {
      CsrDuOptions du = opts_.du;
      du.enable_rle = true;
      matrix_.emplace<CsrDu>(CsrDu::from_triplets(t, du));
      break;
    }
    case Format::kCsrVi:
      matrix_.emplace<CsrVi>(CsrVi::from_triplets(t));
      break;
    case Format::kCsrDuVi:
      matrix_.emplace<CsrDuVi>(CsrDuVi::from_triplets(t, opts_.du));
      break;
    case Format::kDcsr:
      matrix_.emplace<Dcsr>(Dcsr::from_triplets(t));
      break;
    case Format::kSymCsr:
      matrix_.emplace<SymCsr>(SymCsr::from_triplets(t));
      break;
    case Format::kSymCsrVi:
      matrix_.emplace<SymCsrVi>(SymCsrVi::from_triplets(t));
      break;
  }

  // Partition work. CSC partitions columns (§II-C); everything else rows.
  if (nthreads > 1) {
    obs::TraceSpan partition_span("partition");
    if (format == Format::kCsc) {
      aligned_vector<index_t> col_ptr(t.ncols() + 1, 0);
      for (const Entry& e : t.entries()) {
        ++col_ptr[e.col + 1];
      }
      for (index_t c = 0; c < t.ncols(); ++c) {
        col_ptr[c + 1] += col_ptr[c];
      }
      partition_ = opts_.balance_by_nnz
                       ? partition_rows_by_nnz(col_ptr, nthreads)
                       : partition_rows_even(t.ncols(), nthreads);
      csc_scratch_.assign(nthreads, Vector(t.nrows(), 0.0));
    } else if (format == Format::kBcsr) {
      const auto& m = std::get<Bcsr>(matrix_);
      partition_ = opts_.balance_by_nnz
                       ? partition_rows_by_nnz(m.block_row_ptr(), nthreads)
                       : partition_rows_even(m.nblock_rows(), nthreads);
    } else if (format == Format::kJds) {
      // JDS threads own ranges of *permuted* positions; balance by the
      // permuted rows' lengths.
      const auto& m = std::get<Jds>(matrix_);
      std::vector<index_t> len(t.nrows(), 0);
      for (const Entry& e : t.entries()) {
        ++len[e.row];
      }
      aligned_vector<index_t> pptr(t.nrows() + 1, 0);
      for (index_t i = 0; i < t.nrows(); ++i) {
        pptr[i + 1] = pptr[i] + len[m.perm()[i]];
      }
      partition_ = opts_.balance_by_nnz
                       ? partition_rows_by_nnz(pptr, nthreads)
                       : partition_rows_even(t.nrows(), nthreads);
    } else if (format_requires_symmetry(format)) {
      // Balance by stored (lower-triangle) elements, not full nnz.
      const aligned_vector<index_t>& rp =
          format == Format::kSymCsr
              ? std::get<SymCsr>(matrix_).row_ptr()
              : std::get<SymCsrVi>(matrix_).row_ptr();
      partition_ = opts_.balance_by_nnz
                       ? partition_rows_by_nnz(rp, nthreads)
                       : partition_rows_even(t.nrows(), nthreads);
    } else {
      partition_ = opts_.balance_by_nnz
                       ? partition_rows_by_nnz(t, nthreads)
                       : partition_rows_even(t.nrows(), nthreads);
    }
    if (format_requires_symmetry(format)) {
      const bool vi = format == Format::kSymCsrVi;
      const aligned_vector<index_t>& rp =
          vi ? std::get<SymCsrVi>(matrix_).row_ptr()
             : std::get<SymCsr>(matrix_).row_ptr();
      const aligned_vector<index_t>& ci =
          vi ? std::get<SymCsrVi>(matrix_).col_ind()
             : std::get<SymCsr>(matrix_).col_ind();
      sym_plan_ = plan_sym_windows(rp.data(), ci.data(), partition_,
                                   nthreads, nrows_,
                                   sym_reduce_from_env(opts_.sym_reduce));
      sym_reduce_ = sym_plan_.use_window ? SymReduce::kWindow
                                         : SymReduce::kPrivate;
      sym_active_ = true;
    }
    // Precompute per-thread slices for the streaming formats.
    if (const auto* du = std::get_if<CsrDu>(&matrix_)) {
      for (std::size_t th = 0; th < nthreads; ++th) {
        du_slices_.push_back(
            du->slice(partition_.row_begin(th), partition_.row_end(th)));
      }
    } else if (const auto* duvi = std::get_if<CsrDuVi>(&matrix_)) {
      for (std::size_t th = 0; th < nthreads; ++th) {
        du_slices_.push_back(duvi->du().slice(partition_.row_begin(th),
                                              partition_.row_end(th)));
      }
    } else if (const auto* dc = std::get_if<Dcsr>(&matrix_)) {
      for (std::size_t th = 0; th < nthreads; ++th) {
        dcsr_slices_.push_back(
            dc->slice(partition_.row_begin(th), partition_.row_end(th)));
      }
    }

    // The OpenMP backend uses parallel regions instead of the pool
    // (thread binding is then the runtime's job, via OMP_PROC_BIND);
    // without OpenMP support it degrades to the pool (see decisions()).
    if (opts_.backend == Backend::kOpenMP && openmp_available()) {
      opts_.pin_threads = false;
      setup_tiling(t);
    } else {
      if (opts_.backend == Backend::kOpenMP) {
        note_decision("backend", "openmp", "pool",
                      "library built without OpenMP support");
      }
      opts_.backend = Backend::kPool;
      Topology topo;
      std::vector<int> plan;
      if (shared_pool_ != nullptr) {
        // Borrowed pool: placement facts come from its workers. An
        // unpinned pool leaves every worker's node unknowable.
        topo = discover_topology();
        const std::vector<int>& cpus = shared_pool_->worker_cpus();
        if (!cpus.empty() && cpus[0] >= 0) {
          plan = cpus;
        }
        xpool_ = shared_pool_.get();
        run_mu_ = std::make_unique<std::mutex>();
      } else {
        if (opts_.pin_threads) {
          topo = discover_topology();
          plan = plan_placement(topo, nthreads, opts_.placement);
        }
        pool_ = std::make_unique<ThreadPool>(nthreads, plan);
        xpool_ = pool_.get();
      }
      // Schedule first, NUMA second: the chunk plan (and the DU chunk
      // slices) are computed against the pristine arrays, then
      // setup_numa translates the owned slices into each worker's
      // repacked arena block.
      setup_schedule(t, topo);
      // Tiling after the schedule (the chunk plan defines the execution
      // blocks) and before NUMA placement (which repacks the tiled
      // store's per-worker spans instead of the matrix's).
      setup_tiling(t);
      // NUMA placement needs pinned workers: without a plan a worker's
      // node is unknowable, so the policy resolves to off.
      if (!plan.empty()) {
        setup_numa(topo);
      } else if (const NumaPolicy req = numa_policy_from_env(opts_.numa);
                 req != NumaPolicy::kOff) {
        note_decision("numa", numa_policy_name(req), "off",
                      "workers are not pinned, so per-worker NUMA nodes "
                      "are unknown");
      }
    }
    if (sym_active_) {
      if (sym_reduce_ == SymReduce::kWindow) {
        // setup_numa fills sym_win_ptr_ from arena blocks; otherwise
        // fall back to master-touched per-thread window buffers.
        if (sym_win_ptr_.empty()) {
          sym_win_ptr_.resize(nthreads);
          sym_win_store_.reserve(nthreads);
          for (std::size_t th = 0; th < nthreads; ++th) {
            sym_win_store_.emplace_back(
                partition_.row_begin(th) - sym_plan_.win_begin[th], 0.0);
            sym_win_ptr_[th] = sym_win_store_[th].data();
          }
        }
      } else {
        csc_scratch_.assign(nthreads, Vector(t.nrows(), 0.0));
        csc_reduce_rows_ = partition_rows_even(nrows_, nthreads);
      }
      auto& reg = obs::Registry::global();
      sym_reduce_counter_ = &reg.counter("spc.sym.reduce_ns");
      reg.gauge("spc.sym.window_rows")
          .set(static_cast<double>(sym_window_rows()));
    }
  }

  if (nthreads == 1) {
    setup_tiling(t);
  }
  prepare();
}

void SpmvInstance::setup_schedule(const Triplets& t, const Topology& topo) {
  Schedule requested = schedule_from_env(opts_.schedule);
  if (requested == Schedule::kStatic) {
    return;
  }
  // Only formats whose per-thread work is a contiguous row range of a
  // single kernel can run as chunks. The rest (CSC's column partition +
  // reduction, DIA/JDS diagonal traversals, COO, DCSR) silently keep the
  // static schedule; schedule() reports what actually runs.
  switch (format_) {
    case Format::kCsr:
    case Format::kCsr16:
    case Format::kCsrVi:
    case Format::kCsrDu:
    case Format::kCsrDuRle:
    case Format::kCsrDuVi:
    case Format::kBcsr:
    case Format::kEll:
      break;
    case Format::kSymCsr:
    case Format::kSymCsrVi:
      // A stolen symmetric chunk would scatter into the owner's conflict
      // window concurrently with the owner — a data race the window
      // scheme cannot absorb. Chunked keeps every chunk on its owner
      // (run in ascending order), so it stays bit-identical and safe.
      if (requested == Schedule::kSteal) {
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true)) {
          std::fprintf(stderr,
                       "spc: schedule=steal is unsafe for the symmetric "
                       "formats (concurrent window scatters); running "
                       "schedule=chunked instead\n");
        }
        note_decision("schedule", "steal", "chunked",
                      "stolen symmetric chunks would scatter into the "
                      "owner's conflict window concurrently");
        requested = Schedule::kChunked;
      }
      break;
    default:
      note_decision("schedule", schedule_name(requested), "static",
                    format_name(format_) +
                        " has no chunked execution path (work is not a "
                        "contiguous row range of one kernel)");
      return;
  }
  obs::TraceSpan sched_span("schedule:" + schedule_name(requested));

  usize_t target = chunk_nnz_from_env(opts_.chunk_nnz);
  if (target == 0) {
    target = chunk_target_nnz(topo.l2_bytes);
    // One chunk per deque degenerates stealing into relocating whole
    // thread ranges; when the matrix is small relative to the L2 target
    // but still has real work, shrink toward >= 4 chunks per worker
    // (never below the planner's 1024-nnz floor).
    const usize_t adaptive = nnz_ / (nthreads_ * 4);
    if (adaptive >= 1024 && adaptive < target) {
      target = adaptive;
    }
  }
  // Row-cost profile for the planner: BCSR budgets blocks against the
  // block-row partition; everything else budgets true non-zeros per row
  // (rebuilt from the triplets — the DU family has no row_ptr).
  if (format_ == Format::kBcsr) {
    chunk_plan_ = plan_chunks(std::get<Bcsr>(matrix_).block_row_ptr(),
                              partition_, target);
  } else if (format_ == Format::kSymCsr) {
    // Budget stored (lower-triangle) elements — the sym kernels never
    // touch the mirrored upper half.
    chunk_plan_ = plan_chunks(std::get<SymCsr>(matrix_).row_ptr(),
                              partition_, target);
  } else if (format_ == Format::kSymCsrVi) {
    chunk_plan_ = plan_chunks(std::get<SymCsrVi>(matrix_).row_ptr(),
                              partition_, target);
  } else {
    aligned_vector<index_t> rp(nrows_ + 1, 0);
    for (const Entry& e : t.entries()) {
      ++rp[e.row + 1];
    }
    for (index_t r = 0; r < nrows_; ++r) {
      rp[r + 1] += rp[r];
    }
    chunk_plan_ = plan_chunks(rp, partition_, target);
  }
  if (chunk_plan_.nchunks() == 0) {
    chunk_plan_ = ChunkPlan{};
    note_decision("schedule", schedule_name(requested), "static",
                  "chunk plan degenerated (too little work per worker "
                  "for the chunk target)");
    return;
  }
  sched_ = requested;

  // Per-chunk DU slices in one ctl scan (chunk bounds are row-aligned,
  // and units never span rows, so every bound is a unit boundary).
  if (const auto* du = std::get_if<CsrDu>(&matrix_)) {
    du_chunk_slices_ = du->slices(chunk_plan_.bounds);
  } else if (const auto* duvi = std::get_if<CsrDuVi>(&matrix_)) {
    du_chunk_slices_ = duvi->du().slices(chunk_plan_.bounds);
  }

  sched_slots_.assign(nthreads_, SchedSlot{});
  if (sched_ == Schedule::kSteal) {
    std::vector<std::uint32_t> ids(chunk_plan_.nchunks());
    for (std::size_t c = 0; c < ids.size(); ++c) {
      ids[c] = static_cast<std::uint32_t>(c);
    }
    deques_ = std::vector<ChunkDeque>(nthreads_);
    for (std::size_t th = 0; th < nthreads_; ++th) {
      deques_[th].init(
          ids.data() + chunk_plan_.owner_begin[th],
          chunk_plan_.owner_begin[th + 1] - chunk_plan_.owner_begin[th]);
    }
    // NUMA-near victim order from the pin plan; unknown topology (or a
    // single node) degrades to plain rotation inside the helper.
    std::vector<int> tnodes;
    const std::vector<int>& cpus = xpool_->worker_cpus();
    if (topo.num_nodes() > 1 && !cpus.empty() && cpus[0] >= 0) {
      tnodes.resize(nthreads_);
      for (std::size_t th = 0; th < nthreads_; ++th) {
        tnodes[th] = std::max(0, topo.node_of_cpu(cpus[th]));
      }
    }
    steal_victims_ = steal_victim_order(nthreads_, tnodes);
  }

  auto& reg = obs::Registry::global();
  sched_steals_counter_ = &reg.counter("spc.sched.steals");
  reg.gauge("spc.sched.chunks")
      .set(static_cast<double>(chunk_plan_.nchunks()));
}

std::uint64_t SpmvInstance::sched_steals_total() const {
  std::uint64_t total = 0;
  for (const SchedSlot& s : sched_slots_) {
    total += s.stolen;
  }
  return total;
}

void SpmvInstance::sched_reset() {
  for (SchedSlot& s : sched_slots_) {
    s.executed = 0;
    s.stolen = 0;
  }
}

void SpmvInstance::setup_tiling(const Triplets& t) {
  // Only the row-partitioned CSR-shaped formats have a tiled execution
  // path. CSR-16 keeps its untiled kernels (its 16-bit columns already
  // bound the index working set); the rest aren't row-sliced at all.
  switch (format_) {
    case Format::kCsr:
    case Format::kCsrVi:
    case Format::kCsrDu:
    case Format::kCsrDuRle:
    case Format::kCsrDuVi:
      break;
    default:
      return;
  }
  const TileConfig cfg = tile_config_from_env(opts_.tiling);
  if (cfg.mode == TileMode::kOff) {
    tile_plan_ = TilePlan{};
    tile_plan_.decline_reason = "off";
    return;
  }
  // Setup-only cost: the topology probe and the row-span scan run once
  // per instance, off the timed path.
  const Topology topo = discover_topology();
  tile_plan_ = plan_tiles(cfg, nrows_, ncols_, nnz_, mean_row_span_cols(t),
                          topo.l1d_bytes, topo.l2_bytes);
  auto& reg = obs::Registry::global();
  if (!tile_plan_.active) {
    reg.counter("spc.tile.declined").add();
    note_decision("tiling", tile_config_name(cfg), "off",
                  tile_plan_.decline_reason != nullptr &&
                          *tile_plan_.decline_reason != '\0'
                      ? tile_plan_.decline_reason
                      : "tile plan declined");
    return;
  }
  obs::TraceSpan tiling_span("tiling");

  // Execution blocks: the chunk plan's chunks under the dynamic
  // schedules (stealing then moves whole blocks, so a block's stripes
  // always execute in column order on one worker), the partition's
  // per-thread ranges under static, the whole matrix when serial.
  std::vector<index_t> bounds;
  tile_block_owner_.clear();
  if (sched_ != Schedule::kStatic && chunk_plan_.nchunks() > 0) {
    bounds = chunk_plan_.bounds;
    tile_block_owner_ = chunk_plan_.owner;
  } else if (nthreads_ > 1) {
    bounds.push_back(partition_.row_begin(0));
    for (std::size_t th = 0; th < partition_.nthreads(); ++th) {
      bounds.push_back(partition_.row_end(th));
      tile_block_owner_.push_back(static_cast<std::uint32_t>(th));
    }
  } else {
    bounds = {0, nrows_};
    tile_block_owner_.push_back(0);
  }

  TiledStoreSpec spec;
  switch (format_) {
    case Format::kCsr:
      break;
    case Format::kCsrVi: {
      const auto& m = std::get<CsrVi>(matrix_);
      spec.values = false;
      spec.vi_elem = static_cast<std::size_t>(m.width());
      spec.vi_src = m.val_ind_raw().data();
      break;
    }
    case Format::kCsrDu:
      spec.du = true;
      spec.du_opts = opts_.du;
      spec.du_opts.enable_rle = false;
      break;
    case Format::kCsrDuRle:
      spec.du = true;
      spec.du_opts = opts_.du;
      spec.du_opts.enable_rle = true;
      break;
    case Format::kCsrDuVi: {
      const auto& m = std::get<CsrDuVi>(matrix_);
      spec.du = true;
      spec.du_opts = opts_.du;
      spec.values = false;
      spec.vi_elem = static_cast<std::size_t>(m.width());
      spec.vi_src = m.val_ind_raw().data();
      break;
    }
    default:
      break;
  }
  tile_store_ = build_tiled_store(t, bounds, tile_plan_, spec);
  tiled_ = true;

  // Per-tile DU slices against the shared store (setup_numa rewrites
  // them in place when it repacks). The accumulate kernels ignore the
  // slice row bounds; they are block-local here for reference.
  if (spec.du) {
    tile_du_slices_.reserve(tile_store_.tiles.size());
    for (const TileBlock& blk : tile_store_.blocks) {
      for (usize_t ti = blk.tile_begin; ti < blk.tile_end; ++ti) {
        const StripeTile& tile = tile_store_.tiles[ti];
        CsrDu::Slice s;
        s.ctl = tile_store_.ctl.data() + tile.ctl_begin;
        s.ctl_end = tile_store_.ctl.data() + tile.ctl_end;
        s.values = spec.values
                       ? tile_store_.val.data() + tile.val_begin
                       : nullptr;
        s.val_offset = tile.val_begin;
        s.row_begin = 0;
        s.row_end = blk.row_end - blk.row_begin;
        s.row_state = -1;
        s.nnz = tile.nnz;
        tile_du_slices_.push_back(s);
      }
    }
  }

  // Shared-store array pointers, one per worker; setup_numa swaps in the
  // repacked copies.
  TileArrays ta;
  ta.seg_ptr = tile_store_.seg_ptr.data();
  ta.seg_row = tile_store_.seg_row.data();
  ta.col = tile_store_.col.data();
  ta.val = tile_store_.val.data();
  ta.vi = tile_store_.vi.data();
  tile_arrays_.assign(nthreads_, ta);

  reg.counter("spc.tile.instances").add();
  reg.counter("spc.tile.tiles").add(tile_store_.tiles.size());
  reg.gauge("spc.tile.stripes")
      .set(static_cast<double>(tile_plan_.nstripes));
  reg.gauge("spc.tile.stripe_bytes")
      .set(static_cast<double>(tile_plan_.stripe_bytes));
}

void SpmvInstance::setup_numa(const Topology& topo) {
  // Only formats whose per-thread work is a contiguous row-partitioned
  // slice of plain arrays can be repacked. The rest (CSC's column
  // partition + reduction, DIA/JDS diagonal layouts, COO, DCSR) keep the
  // shared arrays.
  switch (format_) {
    case Format::kCsr:
    case Format::kCsr16:
    case Format::kCsrVi:
    case Format::kCsrDu:
    case Format::kCsrDuRle:
    case Format::kCsrDuVi:
    case Format::kBcsr:
    case Format::kEll:
    case Format::kSymCsr:
    case Format::kSymCsrVi:
      break;
    default:
      if (const NumaPolicy req = numa_policy_from_env(opts_.numa);
          req != NumaPolicy::kOff) {
        note_decision("numa", numa_policy_name(req), "off",
                      format_name(format_) +
                          " keeps shared arrays (work is not a "
                          "row-partitioned slice of plain arrays)");
      }
      return;
  }
  const NumaPolicy requested = numa_policy_from_env(opts_.numa);
  const NumaPolicy policy =
      resolve_numa_policy(requested, topo.num_nodes());
  if (policy == NumaPolicy::kOff) {
    if (requested != NumaPolicy::kOff) {
      note_decision("numa", numa_policy_name(requested), "off",
                    "machine has a single NUMA node");
    }
    return;
  }
  obs::TraceSpan numa_span("numa:" + numa_policy_name(policy));

  // Each worker's node, from its resolved pin target.
  const std::vector<int>& cpus = xpool_->worker_cpus();
  thread_node_.resize(nthreads_);
  for (std::size_t t = 0; t < nthreads_; ++t) {
    thread_node_[t] = std::max(0, topo.node_of_cpu(cpus[t]));
  }
  std::vector<int> nodes_used;  // sorted distinct nodes with a worker
  for (const int nd : thread_node_) {
    if (std::find(nodes_used.begin(), nodes_used.end(), nd) ==
        nodes_used.end()) {
      nodes_used.push_back(nd);
    }
  }
  std::sort(nodes_used.begin(), nodes_used.end());

  // ---- Reserve: one block per worker, plus the x-mirror blocks. ----
  std::size_t x_blocks = 0;
  if (policy == NumaPolicy::kReplicate) {
    x_blocks = nodes_used.size();
  } else if (policy == NumaPolicy::kInterleave) {
    x_blocks = 1;
  }
  arena_ = std::make_unique<FirstTouchArena>(nthreads_ + x_blocks);

  struct ThreadPlan {
    FirstTouchArena::Handle rp, ci, val, vi;
    FirstTouchArena::Handle sr;  ///< tiled CSR family: seg_row copy
    FirstTouchArena::Handle diag;  ///< sym formats: diagonal slice
    FirstTouchArena::Handle win;   ///< sym window mode: conflict buffer
    index_t b = 0, e = 0;  ///< row (or block-row) range
    usize_t n0 = 0;        ///< first absolute value/ctl position
    usize_t n = 0;         ///< value (or ctl-byte) count
  };
  std::vector<ThreadPlan> plan(nthreads_);
  for (std::size_t t = 0; t < nthreads_; ++t) {
    plan[t].b = partition_.row_begin(t);
    plan[t].e = partition_.row_end(t);
  }

  // Worker -> tiled-store block range (blocks are ordered by owner: the
  // chunk plan's owner ranges under dynamic schedules, one block per
  // worker under static).
  const auto worker_blocks =
      [&](std::size_t w) -> std::pair<std::size_t, std::size_t> {
    if (sched_ != Schedule::kStatic && chunk_plan_.nchunks() > 0) {
      return {chunk_plan_.owner_begin[w], chunk_plan_.owner_begin[w + 1]};
    }
    return {w, w + 1};
  };
  const bool tiled_du_family = tiled_ && (format_ == Format::kCsrDu ||
                                          format_ == Format::kCsrDuRle ||
                                          format_ == Format::kCsrDuVi);

  // Plans the CSR-shaped formats: a rebased row_ptr slice plus nnz-sized
  // col/val/val-ind slices with the given element widths (0 = absent).
  const auto plan_csr_like = [&](const index_t* rp, std::size_t ci_elem,
                                 std::size_t val_elem,
                                 std::size_t vi_elem) {
    for (std::size_t t = 0; t < nthreads_; ++t) {
      ThreadPlan& p = plan[t];
      p.n0 = rp[p.b];
      p.n = rp[p.e] - rp[p.b];
      p.rp = arena_->reserve<index_t>(t, p.e - p.b + 1);
      if (ci_elem) {
        p.ci = arena_->reserve<std::uint8_t>(t, p.n * ci_elem);
      }
      if (val_elem) {
        p.val = arena_->reserve<std::uint8_t>(t, p.n * val_elem);
      }
      if (vi_elem) {
        p.vi = arena_->reserve<std::uint8_t>(t, p.n * vi_elem);
      }
    }
  };

  if (tiled_) {
    // Tiled execution reads the stripe-major store, not the matrix's
    // arrays: each worker's contiguous seg/ctl/element spans move into
    // its block instead. (Blocks are contiguous per worker, so the spans
    // are single memcpys.)
    const std::size_t vi_elem = tile_store_.vi_elem;
    for (std::size_t w = 0; w < nthreads_; ++w) {
      ThreadPlan& p = plan[w];
      const auto [wb, we] = worker_blocks(w);
      if (wb == we) {
        continue;  // no blocks — nothing reserved, closures never run
      }
      const TileBlock& first = tile_store_.blocks[wb];
      const TileBlock& last = tile_store_.blocks[we - 1];
      p.n0 = first.val_begin;
      p.n = last.val_begin + last.nnz - first.val_begin;  // elements
      if (tiled_du_family) {
        p.ci = arena_->reserve<std::uint8_t>(
            w, last.ctl_end - first.ctl_begin);
        if (format_ != Format::kCsrDuVi) {
          p.val = arena_->reserve<value_t>(w, p.n);
        }
      } else {
        const usize_t nsegs = last.seg_end - first.seg_begin;
        p.rp = arena_->reserve<index_t>(w, nsegs + 1);
        p.sr = arena_->reserve<index_t>(w, nsegs);
        p.ci = arena_->reserve<std::uint32_t>(w, p.n);
        if (format_ == Format::kCsr) {
          p.val = arena_->reserve<value_t>(w, p.n);
        }
      }
      if (vi_elem) {
        p.vi = arena_->reserve<std::uint8_t>(w, p.n * vi_elem);
      }
    }
  } else {
  switch (format_) {
    case Format::kCsr:
      plan_csr_like(std::get<Csr>(matrix_).row_ptr().data(),
                    sizeof(std::uint32_t), sizeof(value_t), 0);
      break;
    case Format::kCsr16:
      plan_csr_like(std::get<Csr16>(matrix_).row_ptr().data(),
                    sizeof(std::uint16_t), sizeof(value_t), 0);
      break;
    case Format::kCsrVi: {
      const auto& m = std::get<CsrVi>(matrix_);
      plan_csr_like(m.row_ptr().data(), sizeof(std::uint32_t), 0,
                    static_cast<std::size_t>(m.width()));
      break;
    }
    case Format::kCsrDu:
    case Format::kCsrDuRle:
    case Format::kCsrDuVi: {
      const std::size_t vi_elem =
          format_ == Format::kCsrDuVi
              ? static_cast<std::size_t>(
                    std::get<CsrDuVi>(matrix_).width())
              : 0;
      for (std::size_t t = 0; t < nthreads_; ++t) {
        ThreadPlan& p = plan[t];
        const CsrDu::Slice& s = du_slices_[t];
        p.n0 = s.val_offset;
        p.n = static_cast<usize_t>(s.ctl_end - s.ctl);
        p.ci = arena_->reserve<std::uint8_t>(t, p.n);
        if (s.values) {
          p.val = arena_->reserve<value_t>(t, s.nnz);
        }
        if (vi_elem) {
          p.vi = arena_->reserve<std::uint8_t>(t, s.nnz * vi_elem);
        }
      }
      break;
    }
    case Format::kBcsr: {
      const auto& m = std::get<Bcsr>(matrix_);
      const index_t* brp = m.block_row_ptr().data();
      const usize_t belems = static_cast<usize_t>(m.block_rows()) *
                             static_cast<usize_t>(m.block_cols());
      for (std::size_t t = 0; t < nthreads_; ++t) {
        ThreadPlan& p = plan[t];  // b/e are block-row bounds here
        p.n0 = brp[p.b];
        p.n = brp[p.e] - brp[p.b];
        p.rp = arena_->reserve<index_t>(t, p.e - p.b + 1);
        p.ci = arena_->reserve<index_t>(t, p.n);
        p.val = arena_->reserve<value_t>(t, p.n * belems);
      }
      break;
    }
    case Format::kEll: {
      const usize_t w = std::get<Ell>(matrix_).width();
      for (std::size_t t = 0; t < nthreads_; ++t) {
        ThreadPlan& p = plan[t];
        p.n0 = static_cast<usize_t>(p.b) * w;
        p.n = static_cast<usize_t>(p.e - p.b) * w;
        p.ci = arena_->reserve<index_t>(t, p.n);
        p.val = arena_->reserve<value_t>(t, p.n);
      }
      break;
    }
    case Format::kSymCsr:
    case Format::kSymCsrVi: {
      // Lower-triangle CSR slice plus the row range's diagonal slice,
      // and — in window mode — the thread's conflict buffer, so the
      // reduction's hot stores land on the owner's node too.
      const bool vi = format_ == Format::kSymCsrVi;
      std::size_t diag_elem = sizeof(value_t);
      if (vi) {
        const auto& m = std::get<SymCsrVi>(matrix_);
        diag_elem = static_cast<std::size_t>(m.width());
        plan_csr_like(m.row_ptr().data(), sizeof(index_t), 0, diag_elem);
      } else {
        const auto& m = std::get<SymCsr>(matrix_);
        plan_csr_like(m.row_ptr().data(), sizeof(index_t),
                      sizeof(value_t), 0);
      }
      for (std::size_t t = 0; t < nthreads_; ++t) {
        ThreadPlan& p = plan[t];
        p.diag = arena_->reserve<std::uint8_t>(
            t, static_cast<usize_t>(p.e - p.b) * diag_elem);
        if (sym_reduce_ == SymReduce::kWindow) {
          p.win = arena_->reserve<value_t>(
              t, static_cast<usize_t>(p.b - sym_plan_.win_begin[t]));
        }
      }
      break;
    }
    default:
      break;
  }
  }

  std::vector<FirstTouchArena::Handle> xh(x_blocks);
  for (std::size_t i = 0; i < x_blocks; ++i) {
    xh[i] = arena_->reserve<value_t>(nthreads_ + i, ncols_);
  }

  // ---- Allocate and first-touch: each worker zero-touches its own
  // block (pinning its pages to its node); one representative worker per
  // node touches that node's x mirror (all pages for replicate, every
  // nparts-th page for interleave). ----
  arena_->allocate();
  std::vector<int> rep(nodes_used.size(), -1);
  for (std::size_t i = 0; i < nodes_used.size(); ++i) {
    for (std::size_t t = 0; t < nthreads_; ++t) {
      if (thread_node_[t] == nodes_used[i]) {
        rep[i] = static_cast<int>(t);
        break;
      }
    }
  }
  xpool_->run([&](std::size_t t) {
    arena_->first_touch(t);
    for (std::size_t i = 0; i < nodes_used.size(); ++i) {
      if (rep[i] != static_cast<int>(t)) {
        continue;
      }
      if (policy == NumaPolicy::kReplicate) {
        arena_->first_touch(nthreads_ + i);
      } else if (policy == NumaPolicy::kInterleave) {
        arena_->first_touch_interleaved(nthreads_, i, nodes_used.size());
      }
    }
  });

  // ---- Copy the slices in (placement is already fixed, so the master
  // can do all copies) and record the pointers prepare() rebinds to. The
  // copies preserve values and order exactly: results are bit-identical
  // to the shared-array binding. ----
  numa_slices_.assign(nthreads_, NumaSlice{});
  // Copies for the CSR-shaped formats. The local row_ptr holds *rebased*
  // values (rp[i] - rp[b]) so col/val/vi slices index from 0, and the
  // returned row_ptr pointer is rebased so kernels keep absolute rows.
  const auto copy_csr_like = [&](const index_t* rp, const void* ci_src,
                                 std::size_t ci_elem,
                                 const value_t* val_src,
                                 const void* vi_src, std::size_t vi_elem) {
    for (std::size_t t = 0; t < nthreads_; ++t) {
      const ThreadPlan& p = plan[t];
      NumaSlice& ns = numa_slices_[t];
      index_t* lrp = arena_->data<index_t>(p.rp);
      for (index_t i = p.b; i <= p.e; ++i) {
        lrp[i - p.b] = rp[i] - rp[p.b];
      }
      ns.row_ptr = rebase_ptr<const index_t>(lrp, p.b);
      if (ci_elem) {
        std::uint8_t* lci = arena_->data<std::uint8_t>(p.ci);
        std::memcpy(lci,
                    static_cast<const std::uint8_t*>(ci_src) +
                        p.n0 * ci_elem,
                    p.n * ci_elem);
        ns.col_ind = lci;
      }
      if (val_src) {
        value_t* lv = arena_->data<value_t>(p.val);
        std::memcpy(lv, val_src + p.n0, p.n * sizeof(value_t));
        ns.values = lv;
      }
      if (vi_elem) {
        std::uint8_t* lvi = arena_->data<std::uint8_t>(p.vi);
        std::memcpy(lvi,
                    static_cast<const std::uint8_t*>(vi_src) +
                        p.n0 * vi_elem,
                    p.n * vi_elem);
        ns.val_ind = lvi;
      }
    }
  };

  if (tiled_) {
    // Tiled copies. CSR family: the local seg_ptr holds *rebased* values
    // (content - first element) with the returned pointer rebased by the
    // first segment, so the kernels keep absolute segment ids while
    // col/val/vi index from 0; seg_row copies verbatim (absolute rows).
    // DU family: the ctl/value/val-ind spans move and the worker's tile
    // slices are redirected in place — same relative positions, so any
    // executor decodes identical bytes.
    const std::size_t vi_elem = tile_store_.vi_elem;
    for (std::size_t w = 0; w < nthreads_; ++w) {
      const ThreadPlan& p = plan[w];
      const auto [wb, we] = worker_blocks(w);
      if (wb == we || arena_->block_bytes(w) == 0) {
        continue;
      }
      const TileBlock& first = tile_store_.blocks[wb];
      const TileBlock& last = tile_store_.blocks[we - 1];
      const usize_t elem0 = first.val_begin;
      TileArrays& ta = tile_arrays_[w];
      if (tiled_du_family) {
        const usize_t ctl0 = first.ctl_begin;
        std::uint8_t* lctl = arena_->data<std::uint8_t>(p.ci);
        std::memcpy(lctl, tile_store_.ctl.data() + ctl0,
                    last.ctl_end - ctl0);
        value_t* lval = nullptr;
        if (format_ != Format::kCsrDuVi) {
          lval = arena_->data<value_t>(p.val);
          std::memcpy(lval, tile_store_.val.data() + elem0,
                      p.n * sizeof(value_t));
          ta.val = lval;
        }
        for (usize_t ti = first.tile_begin; ti < last.tile_end; ++ti) {
          CsrDu::Slice& s = tile_du_slices_[ti];
          const StripeTile& tile = tile_store_.tiles[ti];
          s.ctl = lctl + (tile.ctl_begin - ctl0);
          s.ctl_end = lctl + (tile.ctl_end - ctl0);
          if (lval) {
            s.values = lval + (tile.val_begin - elem0);
          }
          if (vi_elem) {
            // Offsets into the worker-local val_ind span bound below.
            s.val_offset = tile.val_begin - elem0;
          }
        }
      } else {
        const usize_t seg0 = first.seg_begin;
        const usize_t nsegs = last.seg_end - seg0;
        const index_t* sp = tile_store_.seg_ptr.data();
        index_t* lsp = arena_->data<index_t>(p.rp);
        for (usize_t s = 0; s <= nsegs; ++s) {
          lsp[s] = sp[seg0 + s] - static_cast<index_t>(elem0);
        }
        ta.seg_ptr = rebase_ptr<const index_t>(
            lsp, static_cast<std::ptrdiff_t>(seg0));
        index_t* lsr = arena_->data<index_t>(p.sr);
        std::memcpy(lsr, tile_store_.seg_row.data() + seg0,
                    nsegs * sizeof(index_t));
        ta.seg_row = rebase_ptr<const index_t>(
            lsr, static_cast<std::ptrdiff_t>(seg0));
        std::uint32_t* lci = arena_->data<std::uint32_t>(p.ci);
        std::memcpy(lci, tile_store_.col.data() + elem0,
                    p.n * sizeof(std::uint32_t));
        ta.col = lci;
        if (format_ == Format::kCsr) {
          value_t* lv = arena_->data<value_t>(p.val);
          std::memcpy(lv, tile_store_.val.data() + elem0,
                      p.n * sizeof(value_t));
          ta.val = lv;
        }
      }
      if (vi_elem) {
        std::uint8_t* lvi = arena_->data<std::uint8_t>(p.vi);
        std::memcpy(lvi, tile_store_.vi.data() + elem0 * vi_elem,
                    p.n * vi_elem);
        ta.vi = lvi;
      }
    }
  } else {
  switch (format_) {
    case Format::kCsr: {
      const auto& m = std::get<Csr>(matrix_);
      copy_csr_like(m.row_ptr().data(), m.col_ind().data(),
                    sizeof(std::uint32_t), m.values().data(), nullptr, 0);
      break;
    }
    case Format::kCsr16: {
      const auto& m = std::get<Csr16>(matrix_);
      copy_csr_like(m.row_ptr().data(), m.col_ind().data(),
                    sizeof(std::uint16_t), m.values().data(), nullptr, 0);
      break;
    }
    case Format::kCsrVi: {
      const auto& m = std::get<CsrVi>(matrix_);
      copy_csr_like(m.row_ptr().data(), m.col_ind().data(),
                    sizeof(std::uint32_t), nullptr,
                    m.val_ind_raw().data(),
                    static_cast<std::size_t>(m.width()));
      break;
    }
    case Format::kCsrDu:
    case Format::kCsrDuRle:
    case Format::kCsrDuVi: {
      // The ctl stream and (pre-offset) values move into the owner's
      // block; the slice is then redirected at the copies. For DU-VI the
      // per-slice val_ind span moves too and the slice's val_offset
      // becomes 0, with prepare() binding the local pointer.
      const std::uint8_t* vi_raw = nullptr;
      std::size_t vi_elem = 0;
      if (format_ == Format::kCsrDuVi) {
        const auto& m = std::get<CsrDuVi>(matrix_);
        vi_raw = m.val_ind_raw().data();
        vi_elem = static_cast<std::size_t>(m.width());
      }
      for (std::size_t t = 0; t < nthreads_; ++t) {
        const ThreadPlan& p = plan[t];
        CsrDu::Slice& s = du_slices_[t];
        if (arena_->block_bytes(t) == 0) {
          continue;  // empty slice — nothing reserved, nothing to move
        }
        const CsrDu::Slice orig = s;  // pristine offsets, for the chunks
        std::uint8_t* lctl = arena_->data<std::uint8_t>(p.ci);
        std::memcpy(lctl, s.ctl, p.n);
        s.ctl = lctl;
        s.ctl_end = lctl + p.n;
        if (s.values) {
          value_t* lv = arena_->data<value_t>(p.val);
          std::memcpy(lv, s.values, s.nnz * sizeof(value_t));
          s.values = lv;
        }
        if (vi_elem) {
          std::uint8_t* lvi = arena_->data<std::uint8_t>(p.vi);
          std::memcpy(lvi, vi_raw + p.n0 * vi_elem, s.nnz * vi_elem);
          numa_slices_[t].val_ind = lvi;
          s.val_offset = 0;
        }
        // Chunk slices owned by this worker follow its data into the
        // arena block: same relative ctl/value positions, so any
        // executor decodes identical bytes.
        if (!du_chunk_slices_.empty()) {
          for (std::uint32_t c = chunk_plan_.owner_begin[t];
               c < chunk_plan_.owner_begin[t + 1]; ++c) {
            CsrDu::Slice& cs = du_chunk_slices_[c];
            const std::ptrdiff_t ctl_off = cs.ctl - orig.ctl;
            const std::ptrdiff_t ctl_len = cs.ctl_end - cs.ctl;
            cs.ctl = s.ctl + ctl_off;
            cs.ctl_end = cs.ctl + ctl_len;
            const usize_t rel_val = cs.val_offset - orig.val_offset;
            if (cs.values) {
              cs.values = s.values + rel_val;
            }
            if (vi_elem) {
              // The owner's local val_ind span starts at its slice's
              // first non-zero; prepare() binds that local pointer per
              // chunk.
              cs.val_offset = rel_val;
            }
          }
        }
      }
      break;
    }
    case Format::kBcsr: {
      const auto& m = std::get<Bcsr>(matrix_);
      const index_t* brp = m.block_row_ptr().data();
      const usize_t belems = static_cast<usize_t>(m.block_rows()) *
                             static_cast<usize_t>(m.block_cols());
      for (std::size_t t = 0; t < nthreads_; ++t) {
        const ThreadPlan& p = plan[t];
        NumaSlice& ns = numa_slices_[t];
        index_t* lrp = arena_->data<index_t>(p.rp);
        for (index_t i = p.b; i <= p.e; ++i) {
          lrp[i - p.b] = brp[i] - brp[p.b];
        }
        ns.row_ptr = rebase_ptr<const index_t>(lrp, p.b);
        index_t* lbc = arena_->data<index_t>(p.ci);
        std::memcpy(lbc, m.block_col().data() + p.n0,
                    p.n * sizeof(index_t));
        ns.col_ind = lbc;
        value_t* lv = arena_->data<value_t>(p.val);
        std::memcpy(lv, m.values().data() + p.n0 * belems,
                    p.n * belems * sizeof(value_t));
        ns.values = lv;
      }
      break;
    }
    case Format::kEll: {
      // Row-major fixed-width layout: a row range is one contiguous
      // span; the kernels index with absolute r*width+k, so the local
      // copies are handed out rebased.
      const auto& m = std::get<Ell>(matrix_);
      for (std::size_t t = 0; t < nthreads_; ++t) {
        const ThreadPlan& p = plan[t];
        NumaSlice& ns = numa_slices_[t];
        if (arena_->block_bytes(t) == 0) {
          continue;  // empty row range — null pointers, never dereferenced
        }
        index_t* lci = arena_->data<index_t>(p.ci);
        std::memcpy(lci, m.col_ind().data() + p.n0,
                    p.n * sizeof(index_t));
        ns.col_ind = rebase_ptr<const index_t>(
            lci, static_cast<std::ptrdiff_t>(p.n0));
        value_t* lv = arena_->data<value_t>(p.val);
        std::memcpy(lv, m.values().data() + p.n0,
                    p.n * sizeof(value_t));
        ns.values = rebase_ptr<const value_t>(
            lv, static_cast<std::ptrdiff_t>(p.n0));
      }
      break;
    }
    case Format::kSymCsr: {
      const auto& m = std::get<SymCsr>(matrix_);
      copy_csr_like(m.row_ptr().data(), m.col_ind().data(),
                    sizeof(index_t), m.values().data(), nullptr, 0);
      if (sym_reduce_ == SymReduce::kWindow) {
        sym_win_ptr_.assign(nthreads_, nullptr);
      }
      for (std::size_t t = 0; t < nthreads_; ++t) {
        const ThreadPlan& p = plan[t];
        NumaSlice& ns = numa_slices_[t];
        value_t* ld = arena_->data<value_t>(p.diag);
        std::memcpy(ld, m.diag().data() + p.b,
                    static_cast<usize_t>(p.e - p.b) * sizeof(value_t));
        ns.diag = rebase_ptr<const value_t>(ld, p.b);
        if (sym_reduce_ == SymReduce::kWindow) {
          sym_win_ptr_[t] = arena_->data<value_t>(p.win);
        }
      }
      break;
    }
    case Format::kSymCsrVi: {
      const auto& m = std::get<SymCsrVi>(matrix_);
      const std::size_t w = static_cast<std::size_t>(m.width());
      copy_csr_like(m.row_ptr().data(), m.col_ind().data(),
                    sizeof(index_t), nullptr, m.val_ind_raw().data(), w);
      if (sym_reduce_ == SymReduce::kWindow) {
        sym_win_ptr_.assign(nthreads_, nullptr);
      }
      for (std::size_t t = 0; t < nthreads_; ++t) {
        const ThreadPlan& p = plan[t];
        NumaSlice& ns = numa_slices_[t];
        std::uint8_t* ld = arena_->data<std::uint8_t>(p.diag);
        std::memcpy(ld,
                    m.diag_ind_raw().data() +
                        static_cast<usize_t>(p.b) * w,
                    static_cast<usize_t>(p.e - p.b) * w);
        // Rebase in the index type so kernels keep absolute rows.
        switch (m.width()) {
          case ViWidth::kU8:
            ns.diag = rebase_ptr<const std::uint8_t>(ld, p.b);
            break;
          case ViWidth::kU16:
            ns.diag = rebase_ptr<const std::uint16_t>(
                reinterpret_cast<std::uint16_t*>(ld), p.b);
            break;
          case ViWidth::kU32:
            ns.diag = rebase_ptr<const std::uint32_t>(
                reinterpret_cast<std::uint32_t*>(ld), p.b);
            break;
        }
        if (sym_reduce_ == SymReduce::kWindow) {
          sym_win_ptr_[t] = arena_->data<value_t>(p.win);
        }
      }
      break;
    }
    default:
      break;
  }
  }

  // ---- x mirrors: per-thread pointer selection plus the refresh jobs
  // run_parallel dispatches before the kernels. ----
  if (policy == NumaPolicy::kReplicate) {
    numa_x_ptr_.resize(nthreads_);
    numa_x_copy_.resize(nthreads_);
    for (std::size_t i = 0; i < nodes_used.size(); ++i) {
      value_t* const dst = arena_->data<value_t>(xh[i]);
      std::vector<std::size_t> members;
      for (std::size_t t = 0; t < nthreads_; ++t) {
        if (thread_node_[t] == nodes_used[i]) {
          members.push_back(t);
        }
      }
      for (std::size_t r = 0; r < members.size(); ++r) {
        const std::size_t t = members[r];
        const index_t lo = static_cast<index_t>(
            static_cast<usize_t>(ncols_) * r / members.size());
        const index_t hi = static_cast<index_t>(
            static_cast<usize_t>(ncols_) * (r + 1) / members.size());
        numa_x_ptr_[t] = dst;
        numa_x_copy_[t] = [dst, lo, hi](const value_t* x) {
          std::copy(x + lo, x + hi, dst + lo);
        };
      }
    }
  } else if (policy == NumaPolicy::kInterleave) {
    value_t* const dst = arena_->data<value_t>(xh[0]);
    numa_x_ptr_.assign(nthreads_, dst);
    numa_x_copy_.resize(nthreads_);
    for (std::size_t t = 0; t < nthreads_; ++t) {
      const index_t lo = static_cast<index_t>(
          static_cast<usize_t>(ncols_) * t / nthreads_);
      const index_t hi = static_cast<index_t>(
          static_cast<usize_t>(ncols_) * (t + 1) / nthreads_);
      numa_x_copy_[t] = [dst, lo, hi](const value_t* x) {
        std::copy(x + lo, x + hi, dst + lo);
      };
    }
  }

  numa_policy_ = policy;
  auto& reg = obs::Registry::global();
  reg.gauge("spc.numa.nodes").set(static_cast<double>(topo.num_nodes()));
  reg.counter("spc.numa.instances").add();
  reg.counter("spc.numa.repacked_bytes").add(arena_->total_bytes());
  usize_t mirror = 0;
  for (std::size_t i = 0; i < x_blocks; ++i) {
    mirror += arena_->block_bytes(nthreads_ + i);
  }
  if (mirror) {
    reg.counter("spc.numa.x_mirror_bytes").add(mirror);
  }
}

SpmvInstance::NumaResidency SpmvInstance::matrix_residency() const {
  NumaResidency r;
  if (!arena_) {
    r.reason = "numa placement off";
    return r;
  }
  std::string reason;
  for (std::size_t t = 0; t < nthreads_; ++t) {
    std::vector<int> nodes;
    if (!query_page_nodes(arena_->block_base(t), arena_->block_bytes(t),
                          64, &nodes, &reason)) {
      continue;
    }
    for (const int nd : nodes) {
      ++r.pages_sampled;
      if (nd == thread_node_[t]) {
        ++r.pages_local;
      }
    }
  }
  r.available = r.pages_sampled > 0;
  if (!r.available) {
    r.reason = reason.empty() ? "no pages sampled" : reason;
  } else {
    auto& reg = obs::Registry::global();
    reg.counter("spc.numa.residency_pages_sampled").add(r.pages_sampled);
    reg.counter("spc.numa.residency_pages_local").add(r.pages_local);
  }
  return r;
}

namespace {

// DU streams with short units (avg elements/unit below this) stay on the
// scalar decoder even at vector tiers. The vector decode pays per 4-block
// for serial delta resolution plus a gather; the scalar decoder's 4-deep
// unrolled index chain beats it until units run well past vector width
// (measured crossover ~12 on the small corpus: 9-elem stencil units lose
// up to 25%, 18+-elem FEM-block units win 10–25%).
constexpr double kDuVectorMinAvgUnitElems = 12.0;

// The vector decoder's engagement gate. RLE units vectorize without any
// serial delta resolution (contiguous loads / strided gathers), so a
// stream whose elements are mostly RLE engages regardless of unit
// length; otherwise the explicit-delta remainder must clear the
// avg-elems crossover on its own — a pooled average would let a few
// long RLE runs drag short delta units onto the losing vector path.
bool du_vector_profitable(const CsrDu::UnitHistogram& h) {
  if (h.nnz == 0) {
    return false;
  }
  if (static_cast<double>(h.rle_elems) >=
      0.5 * static_cast<double>(h.nnz)) {
    return true;
  }
  const usize_t rest_units = h.units - h.rle_units;
  const usize_t rest_elems = h.nnz - h.rle_elems;
  return rest_units != 0 && static_cast<double>(rest_elems) >=
                                kDuVectorMinAvgUnitElems *
                                    static_cast<double>(rest_units);
}

// Casts the type-erased per-worker val_ind pointer for the tiled VI
// closures (mirrors the NumaSlice::val_ind casts of the untiled path).
template <typename IndT>
const IndT* as_ind(const void* p) {
  return static_cast<const IndT*>(p);
}

}  // namespace

void SpmvInstance::prepare() {
  obs::TraceSpan prepare_span("bind:" + format_name(format_));
  tier_ = active_isa_tier();
  // Vector tiers gather through *signed* 32-bit index lanes; a matrix
  // whose columns (or value-index table) could exceed 2^31 must stay on
  // the scalar kernels.
  if (ncols_ >= (index_t{1} << 31)) {
    if (tier_ != IsaTier::kScalar) {
      note_decision("isa", isa_tier_name(tier_), "scalar",
                    "ncols >= 2^31 overflows the signed 32-bit gather "
                    "lanes of the vector kernels");
    }
    tier_ = IsaTier::kScalar;
  }
  const KernelTable& kt = kernel_table(tier_);
  tier_ = kt.tier;  // reflect host/build clamping
  binding_.clear();
  has_du_hist_ = false;

  if (tiled_) {
    bind_tiled(kt);
    return;
  }

  const index_t nrows = nrows_;
  // Binds serial + per-thread closures over one row-range kernel `fn`
  // and its leading array arguments. Closures capture heap data pointers
  // and PODs only (see kernel_binding.hpp for the move-safety rule).
  const auto bind_rows = [&](auto fn, auto... arrays) {
    binding_.serial = [=](const value_t* x, value_t* y) {
      fn(arrays..., x, y, 0, nrows);
    };
    for (std::size_t th = 0; th < partition_.nthreads(); ++th) {
      const index_t b = partition_.row_begin(th);
      const index_t e = partition_.row_end(th);
      binding_.per_thread.push_back([=](const value_t* x, value_t* y) {
        fn(arrays..., x, y, b, e);
      });
    }
  };
  // When setup_numa() repacked the slices, swap each per-thread closure
  // to the same kernel over the first-touched copies. `arrays_of` maps a
  // NumaSlice to the kernel's leading-array tuple; ranges and values are
  // unchanged, so results stay bit-identical — only the pages move.
  const auto rebind_numa = [&](auto fn, auto arrays_of) {
    for (std::size_t th = 0; th < numa_slices_.size(); ++th) {
      const index_t b = partition_.row_begin(th);
      const index_t e = partition_.row_end(th);
      const auto arrs = arrays_of(numa_slices_[th]);
      binding_.per_thread[th] = [=](const value_t* x, value_t* y) {
        std::apply([&](const auto*... a) { fn(a..., x, y, b, e); }, arrs);
      };
    }
  };
  // Chunk closures for the dynamic schedules: one per ChunkPlan entry,
  // bound over the *owner's* arrays (the NUMA-repacked copies when they
  // exist, else the shared ones) so a stolen chunk reads exactly the
  // bytes its owner would. Chunk row ranges are disjoint, so whichever
  // worker executes a chunk writes only that chunk's rows of y.
  const bool want_chunks =
      sched_ != Schedule::kStatic && chunk_plan_.nchunks() > 0;
  const auto bind_chunks = [&](auto fn, auto shared, auto arrays_of) {
    if (!want_chunks) {
      return;
    }
    binding_.per_chunk.reserve(chunk_plan_.nchunks());
    for (std::size_t c = 0; c < chunk_plan_.nchunks(); ++c) {
      const std::size_t t = chunk_plan_.owner[c];
      const index_t b = chunk_plan_.row_begin(c);
      const index_t e = chunk_plan_.row_end(c);
      auto arrs = shared;
      if (t < numa_slices_.size()) {
        const auto local = arrays_of(numa_slices_[t]);
        if (std::get<0>(local) != nullptr) {
          arrs = local;
        }
      }
      binding_.per_chunk.push_back([=](const value_t* x, value_t* y) {
        std::apply([&](const auto*... a) { fn(a..., x, y, b, e); }, arrs);
      });
    }
  };

  switch (format_) {
    case Format::kCsr: {
      const auto& m = std::get<Csr>(matrix_);
      const auto arrays_of = [](const NumaSlice& s) {
        return std::make_tuple(
            s.row_ptr, static_cast<const std::uint32_t*>(s.col_ind),
            s.values);
      };
      bind_rows(kt.csr, m.row_ptr().data(), m.col_ind().data(),
                m.values().data());
      rebind_numa(kt.csr, arrays_of);
      bind_chunks(kt.csr,
                  std::make_tuple(m.row_ptr().data(), m.col_ind().data(),
                                  m.values().data()),
                  arrays_of);
      break;
    }
    case Format::kCsr16: {
      const auto& m = std::get<Csr16>(matrix_);
      const auto arrays_of = [](const NumaSlice& s) {
        return std::make_tuple(
            s.row_ptr, static_cast<const std::uint16_t*>(s.col_ind),
            s.values);
      };
      bind_rows(kt.csr16, m.row_ptr().data(), m.col_ind().data(),
                m.values().data());
      rebind_numa(kt.csr16, arrays_of);
      bind_chunks(kt.csr16,
                  std::make_tuple(m.row_ptr().data(), m.col_ind().data(),
                                  m.values().data()),
                  arrays_of);
      break;
    }
    case Format::kCsrVi: {
      const auto& m = std::get<CsrVi>(matrix_);
      const index_t* rp = m.row_ptr().data();
      const std::uint32_t* ci = m.col_ind().data();
      const value_t* uq = m.vals_unique().data();
      // The unique-value table is tiny and read-shared; only row_ptr,
      // col_ind, and val_ind repack under NUMA placement.
      const auto bind_vi = [&](auto fn, const auto* vi) {
        const auto arrays_of = [uq, vi](const NumaSlice& s) {
          return std::make_tuple(
              s.row_ptr, static_cast<const std::uint32_t*>(s.col_ind),
              static_cast<decltype(vi)>(s.val_ind), uq);
        };
        bind_rows(fn, rp, ci, vi, uq);
        rebind_numa(fn, arrays_of);
        bind_chunks(fn, std::make_tuple(rp, ci, vi, uq), arrays_of);
      };
      switch (m.width()) {
        case ViWidth::kU8:
          bind_vi(kt.csr_vi_u8, m.val_ind_raw().data());
          break;
        case ViWidth::kU16:
          bind_vi(kt.csr_vi_u16, m.val_ind_as<std::uint16_t>());
          break;
        case ViWidth::kU32:
          bind_vi(kt.csr_vi_u32, m.val_ind_as<std::uint32_t>());
          break;
      }
      break;
    }
    case Format::kCsrDu:
    case Format::kCsrDuRle: {
      const auto& m = std::get<CsrDu>(matrix_);
      du_hist_ = m.unit_histogram();
      has_du_hist_ = true;
      DuKernelFn fn = kt.du;
      if (!du_vector_profitable(du_hist_)) {
        fn = kernel_table(IsaTier::kScalar).du;
      }
      const CsrDu::Slice full = m.full();
      binding_.serial = [=](const value_t* x, value_t* y) {
        fn(full, x, y);
      };
      for (const CsrDu::Slice& s : du_slices_) {
        binding_.per_thread.push_back(
            [=](const value_t* x, value_t* y) { fn(s, x, y); });
      }
      if (want_chunks) {
        binding_.per_chunk.reserve(du_chunk_slices_.size());
        for (const CsrDu::Slice& s : du_chunk_slices_) {
          binding_.per_chunk.push_back(
              [=](const value_t* x, value_t* y) { fn(s, x, y); });
        }
      }
      break;
    }
    case Format::kCsrDuVi: {
      const auto& m = std::get<CsrDuVi>(matrix_);
      du_hist_ = m.du().unit_histogram();
      has_du_hist_ = true;
      const bool vec = du_vector_profitable(du_hist_);
      const KernelTable& dt = vec ? kt : kernel_table(IsaTier::kScalar);
      const value_t* uq = m.vals_unique().data();
      const auto bind_slices = [&](auto fn, const auto* vi) {
        const CsrDu::Slice full = m.du().full();
        binding_.serial = [=](const value_t* x, value_t* y) {
          fn(full, vi, uq, x, y);
        };
        for (std::size_t th = 0; th < du_slices_.size(); ++th) {
          const CsrDu::Slice& s = du_slices_[th];
          // Repacked slices carry val_offset == 0 and a thread-local
          // val_ind span (see setup_numa); bind that instead of the
          // shared stream.
          auto vi_t = vi;
          if (!numa_slices_.empty() && numa_slices_[th].val_ind) {
            vi_t = static_cast<decltype(vi)>(numa_slices_[th].val_ind);
          }
          binding_.per_thread.push_back([=](const value_t* x, value_t* y) {
            fn(s, vi_t, uq, x, y);
          });
        }
        if (want_chunks) {
          binding_.per_chunk.reserve(du_chunk_slices_.size());
          for (std::size_t c = 0; c < du_chunk_slices_.size(); ++c) {
            // Repacked owners carry chunk val_offsets relative to their
            // local val_ind span (see setup_numa); pristine owners keep
            // the shared stream with absolute offsets.
            const std::size_t t = chunk_plan_.owner[c];
            auto vi_c = vi;
            if (!numa_slices_.empty() && numa_slices_[t].val_ind) {
              vi_c = static_cast<decltype(vi)>(numa_slices_[t].val_ind);
            }
            const CsrDu::Slice& s = du_chunk_slices_[c];
            binding_.per_chunk.push_back(
                [=](const value_t* x, value_t* y) {
                  fn(s, vi_c, uq, x, y);
                });
          }
        }
      };
      switch (m.width()) {
        case ViWidth::kU8:
          bind_slices(dt.du_vi_u8, m.val_ind_raw().data());
          break;
        case ViWidth::kU16:
          bind_slices(dt.du_vi_u16, m.val_ind_as<std::uint16_t>());
          break;
        case ViWidth::kU32:
          bind_slices(dt.du_vi_u32, m.val_ind_as<std::uint32_t>());
          break;
      }
      break;
    }
    case Format::kCoo: {
      // Not a dispatch-table format, but binding still pays: the
      // per-thread entry ranges (binary searches over the row array)
      // move from every run to here.
      const auto& m = std::get<Coo>(matrix_);
      const index_t* rr = m.rows().data();
      const index_t* cc = m.cols().data();
      const value_t* vv = m.values().data();
      const usize_t nnz = m.nnz();
      binding_.serial = [=](const value_t* x, value_t* y) {
        std::fill(y, y + nrows, 0.0);
        for (usize_t k = 0; k < nnz; ++k) {
          y[rr[k]] += vv[k] * x[cc[k]];
        }
      };
      for (std::size_t th = 0; th < partition_.nthreads(); ++th) {
        const index_t r0 = partition_.row_begin(th);
        const index_t r1 = partition_.row_end(th);
        const auto& rows = m.rows();
        const usize_t lo = static_cast<usize_t>(
            std::lower_bound(rows.begin(), rows.end(), r0) - rows.begin());
        const usize_t hi = static_cast<usize_t>(
            std::lower_bound(rows.begin(), rows.end(), r1) - rows.begin());
        binding_.per_thread.push_back([=](const value_t* x, value_t* y) {
          std::fill(y + r0, y + r1, 0.0);
          for (usize_t k = lo; k < hi; ++k) {
            y[rr[k]] += vv[k] * x[cc[k]];
          }
        });
      }
      break;
    }
    case Format::kDcsr: {
      const auto& m = std::get<Dcsr>(matrix_);
      const Dcsr::Slice full = m.full();
      binding_.serial = [=](const value_t* x, value_t* y) {
        spmv(full, x, y);
      };
      for (const Dcsr::Slice& s : dcsr_slices_) {
        binding_.per_thread.push_back(
            [=](const value_t* x, value_t* y) { spmv(s, x, y); });
      }
      break;
    }
    case Format::kCsc:
      // Two-phase execution keeps its own path; precompute the
      // reduce-phase row split here instead of every run.
      if (nthreads_ > 1) {
        csc_reduce_rows_ = partition_rows_even(nrows_, nthreads_);
      }
      break;
    case Format::kBcsr: {
      // Bound over raw arrays (not via bind_rows: the partition and the
      // serial range are in *block* rows) so the NUMA repack can swap in
      // per-thread copies.
      const auto& m = std::get<Bcsr>(matrix_);
      const index_t br = m.block_rows();
      const index_t bc = m.block_cols();
      const index_t nbr = m.nblock_rows();
      const index_t nr = nrows_;
      const index_t nc = ncols_;
      const auto raw = [=](const index_t* brp, const index_t* bcol,
                           const value_t* vals, const value_t* x,
                           value_t* y, index_t b, index_t e) {
        spmv_bcsr_raw(br, bc, nr, nc, brp, bcol, vals, x, y, b, e);
      };
      const index_t* brp = m.block_row_ptr().data();
      const index_t* bcol = m.block_col().data();
      const value_t* vals = m.values().data();
      binding_.serial = [=](const value_t* x, value_t* y) {
        raw(brp, bcol, vals, x, y, 0, nbr);
      };
      for (std::size_t th = 0; th < partition_.nthreads(); ++th) {
        const index_t b = partition_.row_begin(th);
        const index_t e = partition_.row_end(th);
        binding_.per_thread.push_back([=](const value_t* x, value_t* y) {
          raw(brp, bcol, vals, x, y, b, e);
        });
      }
      const auto arrays_of = [](const NumaSlice& s) {
        return std::make_tuple(s.row_ptr,
                               static_cast<const index_t*>(s.col_ind),
                               s.values);
      };
      rebind_numa(raw, arrays_of);
      // Chunk bounds are in *block* rows here, matching the partition.
      bind_chunks(raw, std::make_tuple(brp, bcol, vals), arrays_of);
      break;
    }
    case Format::kEll: {
      const auto& m = std::get<Ell>(matrix_);
      const index_t w = m.width();
      const auto raw = [=](const index_t* ci, const value_t* vv,
                           const value_t* x, value_t* y, index_t b,
                           index_t e) {
        spmv_ell_raw(w, ci, vv, x, y, b, e);
      };
      const auto arrays_of = [](const NumaSlice& s) {
        return std::make_tuple(static_cast<const index_t*>(s.col_ind),
                               s.values);
      };
      bind_rows(raw, m.col_ind().data(), m.values().data());
      rebind_numa(raw, arrays_of);
      bind_chunks(raw,
                  std::make_tuple(m.col_ind().data(), m.values().data()),
                  arrays_of);
      break;
    }
    case Format::kSymCsr:
    case Format::kSymCsrVi: {
      // The sym closures carry the window parameterization (see
      // kernels.hpp): per-thread closures write their own rows directly
      // into the shared y and scatter conflicts into the thread's window
      // (private mode: everything into the thread's full-length scratch).
      // run_parallel wraps them in the zero/compute/reduce phases — the
      // generic dispatch path never runs them bare.
      const auto bind_sym = [&](auto fn, auto shared, auto arrays_of) {
        binding_.serial = [=](const value_t* x, value_t* y) {
          std::apply(
              [&](const auto*... a) {
                fn(a..., x, y, nullptr, index_t{0}, index_t{0}, index_t{0},
                   nrows);
              },
              shared);
        };
        if (nthreads_ <= 1) {
          return;
        }
        const bool window = sym_reduce_ == SymReduce::kWindow;
        const auto owner_arrays = [&](std::size_t t) {
          auto arrs = shared;
          if (t < numa_slices_.size()) {
            const auto local = arrays_of(numa_slices_[t]);
            if (std::get<0>(local) != nullptr) {
              arrs = local;
            }
          }
          return arrs;
        };
        for (std::size_t th = 0; th < partition_.nthreads(); ++th) {
          const index_t b = partition_.row_begin(th);
          const index_t e = partition_.row_end(th);
          const auto arrs = owner_arrays(th);
          if (window) {
            value_t* const win = sym_win_ptr_[th];
            const index_t wb = sym_plan_.win_begin[th];
            binding_.per_thread.push_back(
                [=](const value_t* x, value_t* y) {
                  std::apply(
                      [&](const auto*... a) {
                        fn(a..., x, y, win, wb, b, b, e);
                      },
                      arrs);
                });
          } else {
            value_t* const sp = csc_scratch_[th].data();
            binding_.per_thread.push_back(
                [=](const value_t* x, value_t*) {
                  std::apply(
                      [&](const auto*... a) {
                        fn(a..., x, sp, nullptr, index_t{0}, index_t{0}, b,
                           e);
                      },
                      arrs);
                });
          }
        }
        if (want_chunks) {
          binding_.per_chunk.reserve(chunk_plan_.nchunks());
          for (std::size_t c = 0; c < chunk_plan_.nchunks(); ++c) {
            const std::size_t t = chunk_plan_.owner[c];
            const index_t b = chunk_plan_.row_begin(c);
            const index_t e = chunk_plan_.row_end(c);
            const auto arrs = owner_arrays(t);
            if (window) {
              value_t* const win = sym_win_ptr_[t];
              const index_t wb = sym_plan_.win_begin[t];
              const index_t db = partition_.row_begin(t);
              binding_.per_chunk.push_back(
                  [=](const value_t* x, value_t* y) {
                    std::apply(
                        [&](const auto*... a) {
                          fn(a..., x, y, win, wb, db, b, e);
                        },
                        arrs);
                  });
            } else {
              value_t* const sp = csc_scratch_[t].data();
              binding_.per_chunk.push_back(
                  [=](const value_t* x, value_t*) {
                    std::apply(
                        [&](const auto*... a) {
                          fn(a..., x, sp, nullptr, index_t{0}, index_t{0},
                             b, e);
                        },
                        arrs);
                  });
            }
          }
        }
      };
      if (format_ == Format::kSymCsr) {
        const auto& m = std::get<SymCsr>(matrix_);
        const auto arrays_of = [](const NumaSlice& s) {
          return std::make_tuple(s.row_ptr,
                                 static_cast<const index_t*>(s.col_ind),
                                 s.values,
                                 static_cast<const value_t*>(s.diag));
        };
        bind_sym(kt.sym_csr,
                 std::make_tuple(m.row_ptr().data(), m.col_ind().data(),
                                 m.values().data(), m.diag().data()),
                 arrays_of);
      } else {
        const auto& m = std::get<SymCsrVi>(matrix_);
        const value_t* const uq = m.vals_unique().data();
        const auto bind_vi = [&](auto fn, const auto* vi, const auto* di) {
          const auto arrays_of = [uq, vi, di](const NumaSlice& s) {
            return std::make_tuple(
                s.row_ptr, static_cast<const index_t*>(s.col_ind),
                static_cast<decltype(vi)>(s.val_ind),
                static_cast<decltype(di)>(s.diag), uq);
          };
          bind_sym(fn,
                   std::make_tuple(m.row_ptr().data(), m.col_ind().data(),
                                   vi, di, uq),
                   arrays_of);
        };
        switch (m.width()) {
          case ViWidth::kU8:
            bind_vi(kt.sym_csr_vi_u8, m.val_ind_raw().data(),
                    m.diag_ind_raw().data());
            break;
          case ViWidth::kU16:
            bind_vi(kt.sym_csr_vi_u16, m.val_ind_as<std::uint16_t>(),
                    m.diag_ind_as<std::uint16_t>());
            break;
          case ViWidth::kU32:
            bind_vi(kt.sym_csr_vi_u32, m.val_ind_as<std::uint32_t>(),
                    m.diag_ind_as<std::uint32_t>());
            break;
        }
      }
      break;
    }
    case Format::kDia:
    case Format::kJds:
      // Format-object kernels; executed via the run_parallel switch.
      break;
  }
}

void SpmvInstance::bind_tiled(const KernelTable& kt) {
  // All closures capture raw pointers into member containers (stable
  // across the instance move, per the kernel_binding.hpp rule) plus a
  // per-worker TileArrays copy — no `this`.
  const TileBlock* const blocks = tile_store_.blocks.data();
  const StripeTile* const tiles = tile_store_.tiles.data();
  const CsrDu::Slice* const slices = tile_du_slices_.data();
  const std::uint32_t* const owner = tile_block_owner_.data();
  const std::size_t nblocks = tile_store_.blocks.size();
  const bool want_chunks =
      sched_ != Schedule::kStatic && chunk_plan_.nchunks() > 0;

  const auto worker_blocks =
      [&](std::size_t w) -> std::pair<std::size_t, std::size_t> {
    if (want_chunks) {
      return {chunk_plan_.owner_begin[w], chunk_plan_.owner_begin[w + 1]};
    }
    return {w, w + 1};
  };
  // Binds serial/per-thread/per-chunk closures from a factory producing
  // "run blocks [b0, b1) over these worker arrays". The serial closure
  // uses worker 0's arrays: it only ever runs when nthreads_ == 1 (where
  // they are the sole arrays — NUMA placement needs a pool).
  const auto bind_all = [&](auto make_job) {
    binding_.serial = make_job(tile_arrays_[0], 0, nblocks);
    if (nthreads_ > 1) {
      for (std::size_t w = 0; w < nthreads_; ++w) {
        const auto [b0, b1] = worker_blocks(w);
        binding_.per_thread.push_back(make_job(tile_arrays_[w], b0, b1));
      }
      if (want_chunks) {
        // One closure per chunk (== block), over the *owner's* arrays,
        // so a stolen chunk reads exactly the bytes its owner would.
        binding_.per_chunk.reserve(nblocks);
        for (std::size_t c = 0; c < nblocks; ++c) {
          binding_.per_chunk.push_back(
              make_job(tile_arrays_[owner[c]], c, c + 1));
        }
      }
    }
  };

  if (format_ == Format::kCsrDu || format_ == Format::kCsrDuRle ||
      format_ == Format::kCsrDuVi) {
    // The histogram the gate (and du_histogram()) sees is the aggregate
    // over the stripe-local tile streams — the deltas actually decoded.
    du_hist_ = tile_store_.du_hist;
    has_du_hist_ = tile_store_.has_du_hist;
  }

  switch (format_) {
    case Format::kCsr: {
      const CsrSegKernelFn fn = kt.csr_seg;
      bind_all([=](const TileArrays& ta, std::size_t b0, std::size_t b1) {
        return [=](const value_t* x, value_t* y) {
          for (std::size_t b = b0; b < b1; ++b) {
            const TileBlock& blk = blocks[b];
            std::fill(y + blk.row_begin, y + blk.row_end, 0.0);
            fn(ta.seg_ptr, ta.seg_row, ta.col, ta.val, x, y,
               blk.seg_begin, blk.seg_end);
          }
        };
      });
      break;
    }
    case Format::kCsrVi: {
      const auto& m = std::get<CsrVi>(matrix_);
      const value_t* const uq = m.vals_unique().data();
      const auto bind_vi = [&](auto fn, auto vi_cast) {
        bind_all(
            [=](const TileArrays& ta, std::size_t b0, std::size_t b1) {
              return [=](const value_t* x, value_t* y) {
                const auto* const vi = vi_cast(ta.vi);
                for (std::size_t b = b0; b < b1; ++b) {
                  const TileBlock& blk = blocks[b];
                  std::fill(y + blk.row_begin, y + blk.row_end, 0.0);
                  fn(ta.seg_ptr, ta.seg_row, ta.col, vi, uq, x, y,
                     blk.seg_begin, blk.seg_end);
                }
              };
            });
      };
      switch (m.width()) {
        case ViWidth::kU8:
          bind_vi(kt.csr_vi_seg_u8, &as_ind<std::uint8_t>);
          break;
        case ViWidth::kU16:
          bind_vi(kt.csr_vi_seg_u16, &as_ind<std::uint16_t>);
          break;
        case ViWidth::kU32:
          bind_vi(kt.csr_vi_seg_u32, &as_ind<std::uint32_t>);
          break;
      }
      break;
    }
    case Format::kCsrDu:
    case Format::kCsrDuRle: {
      DuKernelFn fn = kt.du_acc;
      if (!du_vector_profitable(du_hist_)) {
        fn = kernel_table(IsaTier::kScalar).du_acc;
      }
      bind_all([=](const TileArrays&, std::size_t b0, std::size_t b1) {
        return [=](const value_t* x, value_t* y) {
          for (std::size_t b = b0; b < b1; ++b) {
            const TileBlock& blk = blocks[b];
            std::fill(y + blk.row_begin, y + blk.row_end, 0.0);
            value_t* const yb = y + blk.row_begin;
            for (usize_t ti = blk.tile_begin; ti < blk.tile_end; ++ti) {
              fn(slices[ti], x + tiles[ti].x_base, yb);
            }
          }
        };
      });
      break;
    }
    case Format::kCsrDuVi: {
      const auto& m = std::get<CsrDuVi>(matrix_);
      const value_t* const uq = m.vals_unique().data();
      const bool vec = du_vector_profitable(du_hist_);
      const KernelTable& dt = vec ? kt : kernel_table(IsaTier::kScalar);
      const auto bind_vi = [&](auto fn, auto vi_cast) {
        bind_all(
            [=](const TileArrays& ta, std::size_t b0, std::size_t b1) {
              return [=](const value_t* x, value_t* y) {
                const auto* const vi = vi_cast(ta.vi);
                for (std::size_t b = b0; b < b1; ++b) {
                  const TileBlock& blk = blocks[b];
                  std::fill(y + blk.row_begin, y + blk.row_end, 0.0);
                  value_t* const yb = y + blk.row_begin;
                  for (usize_t ti = blk.tile_begin; ti < blk.tile_end;
                       ++ti) {
                    fn(slices[ti], vi, uq, x + tiles[ti].x_base, yb);
                  }
                }
              };
            });
      };
      switch (m.width()) {
        case ViWidth::kU8:
          bind_vi(dt.du_vi_acc_u8, &as_ind<std::uint8_t>);
          break;
        case ViWidth::kU16:
          bind_vi(dt.du_vi_acc_u16, &as_ind<std::uint16_t>);
          break;
        case ViWidth::kU32:
          bind_vi(dt.du_vi_acc_u32, &as_ind<std::uint32_t>);
          break;
      }
      break;
    }
    default:
      SPC_CHECK_MSG(false, "untileable format reached bind_tiled");
      break;
  }
}

double SpmvInstance::sym_window_frac() const {
  if (!sym_active_) {
    return 0.0;
  }
  if (sym_reduce_ == SymReduce::kPrivate) {
    return 1.0;
  }
  const double denom =
      static_cast<double>(nthreads_) * static_cast<double>(nrows_);
  return denom > 0.0 ? static_cast<double>(sym_plan_.total_rows) / denom
                     : 0.0;
}

usize_t SpmvInstance::matrix_bytes() const {
  if (tiled_) {
    // The tiled store replaces the matrix's execution arrays; the VI
    // formats keep their unique-value table.
    usize_t b = tile_store_.bytes();
    if (const auto* m = std::get_if<CsrVi>(&matrix_)) {
      b += m->vals_unique().size() * sizeof(value_t);
    } else if (const auto* m = std::get_if<CsrDuVi>(&matrix_)) {
      b += m->vals_unique().size() * sizeof(value_t);
    }
    return b;
  }
  return std::visit([](const auto& m) { return m.bytes(); }, matrix_);
}

void SpmvInstance::run_locked(const Vector& x, Vector& y) {
  // Shared-pool instances serialize their runs: run_args_ and the
  // scheduler state are per-instance, and several engine dispatchers may
  // drive this matrix at once. Owned-pool instances have no mutex and
  // keep the historical zero-overhead path.
  if (run_mu_ != nullptr) {
    std::lock_guard<std::mutex> lk(*run_mu_);
    if (nthreads_ == 1) {
      run_serial(x.data(), y.data());
    } else {
      run_parallel(x, y);
    }
    return;
  }
  if (nthreads_ == 1) {
    run_serial(x.data(), y.data());
  } else {
    run_parallel(x, y);
  }
}

void SpmvInstance::run(const Vector& x, Vector& y) {
  SPC_CHECK_MSG(x.size() == ncols_, "x has wrong dimension");
  SPC_CHECK_MSG(y.size() == nrows_, "y has wrong dimension");
  // The always-on cost is one relaxed shard add (~10 ns). The per-run
  // latency sample needs two clock reads — noticeable on sub-µs tiny
  // kernels — so it only runs while an observability sink is active.
  const bool sample =
      obs::Tracer::global().enabled() || obs::MetricsSink::global().enabled();
  const std::uint64_t t0 = sample ? now_ns() : 0;
  run_locked(x, y);
  runs_counter_->add();
  if (sample) {
    const std::uint64_t t1 = now_ns();
    run_histo_->record(t1 >= t0 ? t1 - t0 : 0);
  }
}

std::uint64_t SpmvInstance::run_probe(const Vector& x, Vector& y) {
  SPC_CHECK_MSG(x.size() == ncols_, "x has wrong dimension");
  SPC_CHECK_MSG(y.size() == nrows_, "y has wrong dimension");
  const std::uint64_t t0 = now_ns();
  run_locked(x, y);
  const std::uint64_t t1 = now_ns();
  runs_counter_->add();
  return t1 >= t0 ? t1 - t0 : 0;
}

bool SpmvInstance::can_run_on_caller() const {
  // Two-phase paths (symmetric scatter/reduce; unbound formats: CSC's
  // partial-sum reduction, DIA/JDS/COO) either have no serial kernel or
  // would reassociate the sums — not bit-identical to the pooled run.
  if (sym_active_ || !binding_.bound()) {
    return false;
  }
  // The tiled serial binding walks every block through worker 0's array
  // pointers; under NUMA placement those cover only worker 0's blocks.
  if (tiled_ && numa_policy_ != NumaPolicy::kOff) {
    return false;
  }
  return true;
}

bool SpmvInstance::run_on_caller(const Vector& x, Vector& y) {
  SPC_CHECK_MSG(x.size() == ncols_, "x has wrong dimension");
  SPC_CHECK_MSG(y.size() == nrows_, "y has wrong dimension");
  if (!can_run_on_caller()) {
    return false;
  }
  // No run_mu_ here: the serial kernel reads only the immutable prepared
  // arrays and writes only the caller's y — safe alongside concurrent
  // pooled runs of the same instance.
  const bool sample =
      obs::Tracer::global().enabled() || obs::MetricsSink::global().enabled();
  const std::uint64_t t0 = sample ? now_ns() : 0;
  binding_.serial(x.data(), y.data());
  runs_counter_->add();
  if (sample) {
    const std::uint64_t t1 = now_ns();
    run_histo_->record(t1 >= t0 ? t1 - t0 : 0);
  }
  return true;
}

void SpmvInstance::run_serial(const value_t* x, value_t* y) {
  if (binding_.bound()) {
    binding_.serial(x, y);
    return;
  }
  std::visit([&](const auto& m) { spmv(m, x, y); }, matrix_);
}

void SpmvInstance::run_parallel(const Vector& x, Vector& y) {
  const value_t* const xp = x.data();
  value_t* const yp = y.data();

  // Symmetric formats: two-phase execution — zero+compute (direct rows
  // into the shared y, conflicts into the per-thread windows or private
  // copies), then the reduction. When the window plan has no conflict
  // rows at all, the reduction phase is skipped entirely.
  if (sym_active_) {
    run_args_.x = xp;
    run_args_.y = yp;
    const bool reduce_needed = sym_reduce_ == SymReduce::kPrivate ||
                               sym_plan_.total_rows > 0;
    if (xpool_ == nullptr) {
      // OpenMP backend: same phases as parallel regions.
      dispatch([&](std::size_t th) { sym_compute_job(this, th); });
      if (reduce_needed) {
        const std::uint64_t t0 = now_ns();
        dispatch([&](std::size_t th) { sym_reduce_job(this, th); });
        const std::uint64_t t1 = now_ns();
        const std::uint64_t dt = t1 >= t0 ? t1 - t0 : 0;
        sym_reduce_ns_ += dt;
        sym_reduce_counter_->add(dt);
      }
      return;
    }
    if (!numa_x_copy_.empty()) {
      dispatch_raw(&SpmvInstance::xcopy_job);
    }
    dispatch_raw(&SpmvInstance::sym_compute_job);
    if (reduce_needed) {
      const std::uint64_t t0 = now_ns();
      dispatch_raw(&SpmvInstance::sym_reduce_job);
      const std::uint64_t t1 = now_ns();
      const std::uint64_t dt = t1 >= t0 ? t1 - t0 : 0;
      sym_reduce_ns_ += dt;
      sym_reduce_counter_->add(dt);
    }
    return;
  }

  // Dispatch-bound formats: everything was fixed by prepare(); the
  // timed path is the raw-callable pool dispatch — one function-pointer
  // call per worker, no std::function construction. The
  // replicate/interleave x policies add a refresh phase — each worker
  // copies its chunk of x into the node-placed mirror — and worker_x()
  // swaps in the per-thread mirror pointer.
  if (!binding_.per_thread.empty()) {
    if (xpool_ == nullptr) {
      // OpenMP backend: parallel regions, always static.
      dispatch([&](std::size_t th) { binding_.per_thread[th](xp, yp); });
      return;
    }
    run_args_.x = xp;
    run_args_.y = yp;
    if (!numa_x_copy_.empty()) {
      dispatch_raw(&SpmvInstance::xcopy_job);
    }
    switch (sched_) {
      case Schedule::kStatic:
        dispatch_raw(&SpmvInstance::static_job);
        break;
      case Schedule::kChunked:
        dispatch_raw(&SpmvInstance::chunked_job);
        break;
      case Schedule::kSteal:
        // Refill every deque with its owner's chunks; the pool's
        // dispatch handshake publishes these stores to the workers.
        for (ChunkDeque& d : deques_) {
          d.reset();
        }
        dispatch_raw(&SpmvInstance::steal_job);
        break;
    }
    return;
  }

  switch (format_) {
    case Format::kCsc: {
      // Column partitioning with private y copies and a reduction (§II-C).
      const auto& m = std::get<Csc>(matrix_);
      dispatch([&](std::size_t th) {
        Vector& scratch = csc_scratch_[th];
        std::fill(scratch.begin(), scratch.end(), 0.0);
        spmv_csc_cols(m, xp, scratch.data(), partition_.row_begin(th),
                      partition_.row_end(th));
      });
      // Reduce: rows split evenly across threads (precomputed).
      dispatch([&](std::size_t th) {
        const index_t r0 = csc_reduce_rows_.row_begin(th);
        const index_t r1 = csc_reduce_rows_.row_end(th);
        std::fill(yp + r0, yp + r1, 0.0);
        for (const Vector& scratch : csc_scratch_) {
          const value_t* const sp = scratch.data();
          for (index_t r = r0; r < r1; ++r) {
            yp[r] += sp[r];
          }
        }
      });
      break;
    }
    case Format::kDia: {
      const auto& m = std::get<Dia>(matrix_);
      dispatch([&](std::size_t th) {
        spmv_dia_range(m, xp, yp, partition_.row_begin(th),
                       partition_.row_end(th));
      });
      break;
    }
    case Format::kJds: {
      const auto& m = std::get<Jds>(matrix_);
      dispatch([&](std::size_t th) {
        spmv_jds_range(m, xp, yp, partition_.row_begin(th),
                       partition_.row_end(th));
      });
      break;
    }
    case Format::kCsr:
    case Format::kCsr16:
    case Format::kCoo:
    case Format::kBcsr:
    case Format::kEll:
    case Format::kCsrDu:
    case Format::kCsrDuRle:
    case Format::kCsrVi:
    case Format::kCsrDuVi:
    case Format::kDcsr:
    case Format::kSymCsr:
    case Format::kSymCsrVi:
      // Always bound by prepare() (sym: handled by the two-phase path
      // above).
      SPC_CHECK_MSG(false, "dispatch-bound format reached the switch");
      break;
  }
}

Vector spmv_simple(const Triplets& t, const Vector& x) {
  const Csr m = Csr::from_triplets(t);
  Vector y(t.nrows(), 0.0);
  spmv(m, x.data(), y.data());
  return y;
}

}  // namespace spc
