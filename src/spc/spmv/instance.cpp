#include "spc/spmv/instance.hpp"

#include <algorithm>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "spc/obs/metrics_io.hpp"
#include "spc/obs/trace.hpp"
#include "spc/spmv/kernels.hpp"
#include "spc/support/strutil.hpp"
#include "spc/support/timing.hpp"

namespace spc {

bool openmp_available() {
#ifdef _OPENMP
  return true;
#else
  return false;
#endif
}

void SpmvInstance::dispatch(const std::function<void(std::size_t)>& body) {
#ifdef _OPENMP
  if (opts_.backend == Backend::kOpenMP) {
    const int n = static_cast<int>(nthreads_);
#pragma omp parallel num_threads(n)
    { body(static_cast<std::size_t>(omp_get_thread_num())); }
    return;
  }
#endif
  pool_->run(body);
}

std::string format_name(Format f) {
  switch (f) {
    case Format::kCsr:
      return "csr";
    case Format::kCsr16:
      return "csr16";
    case Format::kCoo:
      return "coo";
    case Format::kCsc:
      return "csc";
    case Format::kBcsr:
      return "bcsr";
    case Format::kEll:
      return "ell";
    case Format::kDia:
      return "dia";
    case Format::kJds:
      return "jds";
    case Format::kCsrDu:
      return "csr-du";
    case Format::kCsrDuRle:
      return "csr-du-rle";
    case Format::kCsrVi:
      return "csr-vi";
    case Format::kCsrDuVi:
      return "csr-du-vi";
    case Format::kDcsr:
      return "dcsr";
  }
  return "?";
}

Format parse_format(const std::string& name) {
  const std::string n = to_lower(name);
  for (const Format f : all_formats()) {
    if (format_name(f) == n) {
      return f;
    }
  }
  throw InvalidArgument("unknown format: " + name);
}

const std::vector<Format>& all_formats() {
  static const std::vector<Format> kAll = {
      Format::kCsr,      Format::kCsr16, Format::kCoo,
      Format::kCsc,      Format::kBcsr,  Format::kEll,
      Format::kDia,      Format::kJds,   Format::kCsrDu,
      Format::kCsrDuRle, Format::kCsrVi, Format::kCsrDuVi,
      Format::kDcsr,
  };
  return kAll;
}

SpmvInstance::~SpmvInstance() = default;
SpmvInstance::SpmvInstance(SpmvInstance&&) noexcept = default;

SpmvInstance::SpmvInstance(const Triplets& t, Format format,
                           std::size_t nthreads,
                           const InstanceOptions& opts)
    : format_(format), nthreads_(nthreads), opts_(opts) {
  SPC_CHECK_MSG(nthreads >= 1, "nthreads must be >= 1");
  SPC_CHECK_MSG(t.is_sorted_unique(),
                "SpmvInstance requires sorted/combined triplets");
  nrows_ = t.nrows();
  ncols_ = t.ncols();
  nnz_ = t.nnz();
  runs_counter_ = &obs::Registry::global().counter("spc.spmv.runs");
  run_histo_ = &obs::Registry::global().histogram("spc.spmv.run_ns");

  // Covers encoding plus partitioning/slicing below.
  obs::TraceSpan prepare_span("prepare:" + format_name(format));

  // Encode the matrix.
  switch (format) {
    case Format::kCsr:
      matrix_.emplace<Csr>(Csr::from_triplets(t));
      break;
    case Format::kCsr16:
      SPC_CHECK_MSG(csr16_applicable(t),
                    "csr16 requires ncols <= 65536");
      matrix_.emplace<Csr16>(Csr16::from_triplets(t));
      break;
    case Format::kCoo:
      matrix_.emplace<Coo>(Coo::from_triplets(t));
      break;
    case Format::kCsc:
      matrix_.emplace<Csc>(Csc::from_triplets(t));
      break;
    case Format::kBcsr:
      matrix_.emplace<Bcsr>(Bcsr::from_triplets(t, opts.bcsr_block_rows,
                                                opts.bcsr_block_cols));
      break;
    case Format::kEll:
      matrix_.emplace<Ell>(
          Ell::from_triplets(t, opts.ell_max_width_factor));
      break;
    case Format::kDia:
      matrix_.emplace<Dia>(Dia::from_triplets(t, opts.dia_max_diags));
      break;
    case Format::kJds:
      matrix_.emplace<Jds>(Jds::from_triplets(t));
      break;
    case Format::kCsrDu: {
      CsrDuOptions du = opts.du;
      du.enable_rle = false;
      matrix_.emplace<CsrDu>(CsrDu::from_triplets(t, du));
      break;
    }
    case Format::kCsrDuRle: {
      CsrDuOptions du = opts.du;
      du.enable_rle = true;
      matrix_.emplace<CsrDu>(CsrDu::from_triplets(t, du));
      break;
    }
    case Format::kCsrVi:
      matrix_.emplace<CsrVi>(CsrVi::from_triplets(t));
      break;
    case Format::kCsrDuVi:
      matrix_.emplace<CsrDuVi>(CsrDuVi::from_triplets(t, opts.du));
      break;
    case Format::kDcsr:
      matrix_.emplace<Dcsr>(Dcsr::from_triplets(t));
      break;
  }

  // Partition work. CSC partitions columns (§II-C); everything else rows.
  if (nthreads > 1) {
    obs::TraceSpan partition_span("partition");
    if (format == Format::kCsc) {
      aligned_vector<index_t> col_ptr(t.ncols() + 1, 0);
      for (const Entry& e : t.entries()) {
        ++col_ptr[e.col + 1];
      }
      for (index_t c = 0; c < t.ncols(); ++c) {
        col_ptr[c + 1] += col_ptr[c];
      }
      partition_ = opts.balance_by_nnz
                       ? partition_rows_by_nnz(col_ptr, nthreads)
                       : partition_rows_even(t.ncols(), nthreads);
      csc_scratch_.assign(nthreads, Vector(t.nrows(), 0.0));
    } else if (format == Format::kBcsr) {
      const auto& m = std::get<Bcsr>(matrix_);
      partition_ = opts.balance_by_nnz
                       ? partition_rows_by_nnz(m.block_row_ptr(), nthreads)
                       : partition_rows_even(m.nblock_rows(), nthreads);
    } else if (format == Format::kJds) {
      // JDS threads own ranges of *permuted* positions; balance by the
      // permuted rows' lengths.
      const auto& m = std::get<Jds>(matrix_);
      std::vector<index_t> len(t.nrows(), 0);
      for (const Entry& e : t.entries()) {
        ++len[e.row];
      }
      aligned_vector<index_t> pptr(t.nrows() + 1, 0);
      for (index_t i = 0; i < t.nrows(); ++i) {
        pptr[i + 1] = pptr[i] + len[m.perm()[i]];
      }
      partition_ = opts.balance_by_nnz
                       ? partition_rows_by_nnz(pptr, nthreads)
                       : partition_rows_even(t.nrows(), nthreads);
    } else {
      partition_ = opts.balance_by_nnz
                       ? partition_rows_by_nnz(t, nthreads)
                       : partition_rows_even(t.nrows(), nthreads);
    }
    // Precompute per-thread slices for the streaming formats.
    if (const auto* du = std::get_if<CsrDu>(&matrix_)) {
      for (std::size_t th = 0; th < nthreads; ++th) {
        du_slices_.push_back(
            du->slice(partition_.row_begin(th), partition_.row_end(th)));
      }
    } else if (const auto* duvi = std::get_if<CsrDuVi>(&matrix_)) {
      for (std::size_t th = 0; th < nthreads; ++th) {
        du_slices_.push_back(duvi->du().slice(partition_.row_begin(th),
                                              partition_.row_end(th)));
      }
    } else if (const auto* dc = std::get_if<Dcsr>(&matrix_)) {
      for (std::size_t th = 0; th < nthreads; ++th) {
        dcsr_slices_.push_back(
            dc->slice(partition_.row_begin(th), partition_.row_end(th)));
      }
    }

    // The OpenMP backend uses parallel regions instead of the pool
    // (thread binding is then the runtime's job, via OMP_PROC_BIND);
    // without OpenMP support it silently degrades to the pool.
    if (opts_.backend == Backend::kOpenMP && openmp_available()) {
      opts_.pin_threads = false;
    } else {
      opts_.backend = Backend::kPool;
      std::vector<int> plan;
      if (opts.pin_threads) {
        const Topology topo = discover_topology();
        plan = plan_placement(topo, nthreads, opts.placement);
      }
      pool_ = std::make_unique<ThreadPool>(nthreads, plan);
    }
  }

  prepare();
}

namespace {

// DU streams with short units (avg elements/unit below this) stay on the
// scalar decoder even at vector tiers. The vector decode pays per 4-block
// for serial delta resolution plus a gather; the scalar decoder's 4-deep
// unrolled index chain beats it until units run well past vector width
// (measured crossover ~12 on the small corpus: 9-elem stencil units lose
// up to 25%, 18+-elem FEM-block units win 10–25%).
constexpr double kDuVectorMinAvgUnitElems = 12.0;

}  // namespace

void SpmvInstance::prepare() {
  obs::TraceSpan prepare_span("bind:" + format_name(format_));
  tier_ = active_isa_tier();
  // Vector tiers gather through *signed* 32-bit index lanes; a matrix
  // whose columns (or value-index table) could exceed 2^31 must stay on
  // the scalar kernels.
  if (ncols_ >= (index_t{1} << 31)) {
    tier_ = IsaTier::kScalar;
  }
  const KernelTable& kt = kernel_table(tier_);
  tier_ = kt.tier;  // reflect host/build clamping
  binding_.clear();
  has_du_hist_ = false;

  const index_t nrows = nrows_;
  // Binds serial + per-thread closures over one row-range kernel `fn`
  // and its leading array arguments. Closures capture heap data pointers
  // and PODs only (see kernel_binding.hpp for the move-safety rule).
  const auto bind_rows = [&](auto fn, auto... arrays) {
    binding_.serial = [=](const value_t* x, value_t* y) {
      fn(arrays..., x, y, 0, nrows);
    };
    for (std::size_t th = 0; th < partition_.nthreads(); ++th) {
      const index_t b = partition_.row_begin(th);
      const index_t e = partition_.row_end(th);
      binding_.per_thread.push_back([=](const value_t* x, value_t* y) {
        fn(arrays..., x, y, b, e);
      });
    }
  };

  switch (format_) {
    case Format::kCsr: {
      const auto& m = std::get<Csr>(matrix_);
      bind_rows(kt.csr, m.row_ptr().data(), m.col_ind().data(),
                m.values().data());
      break;
    }
    case Format::kCsr16: {
      const auto& m = std::get<Csr16>(matrix_);
      bind_rows(kt.csr16, m.row_ptr().data(), m.col_ind().data(),
                m.values().data());
      break;
    }
    case Format::kCsrVi: {
      const auto& m = std::get<CsrVi>(matrix_);
      const index_t* rp = m.row_ptr().data();
      const std::uint32_t* ci = m.col_ind().data();
      const value_t* uq = m.vals_unique().data();
      switch (m.width()) {
        case ViWidth::kU8:
          bind_rows(kt.csr_vi_u8, rp, ci, m.val_ind_raw().data(), uq);
          break;
        case ViWidth::kU16:
          bind_rows(kt.csr_vi_u16, rp, ci,
                    m.val_ind_as<std::uint16_t>(), uq);
          break;
        case ViWidth::kU32:
          bind_rows(kt.csr_vi_u32, rp, ci,
                    m.val_ind_as<std::uint32_t>(), uq);
          break;
      }
      break;
    }
    case Format::kCsrDu:
    case Format::kCsrDuRle: {
      const auto& m = std::get<CsrDu>(matrix_);
      du_hist_ = m.unit_histogram();
      has_du_hist_ = true;
      DuKernelFn fn = kt.du;
      if (du_hist_.avg_unit_elems() < kDuVectorMinAvgUnitElems) {
        fn = kernel_table(IsaTier::kScalar).du;
      }
      const CsrDu::Slice full = m.full();
      binding_.serial = [=](const value_t* x, value_t* y) {
        fn(full, x, y);
      };
      for (const CsrDu::Slice& s : du_slices_) {
        binding_.per_thread.push_back(
            [=](const value_t* x, value_t* y) { fn(s, x, y); });
      }
      break;
    }
    case Format::kCsrDuVi: {
      const auto& m = std::get<CsrDuVi>(matrix_);
      du_hist_ = m.du().unit_histogram();
      has_du_hist_ = true;
      const bool vec =
          du_hist_.avg_unit_elems() >= kDuVectorMinAvgUnitElems;
      const KernelTable& dt = vec ? kt : kernel_table(IsaTier::kScalar);
      const value_t* uq = m.vals_unique().data();
      const auto bind_slices = [&](auto fn, const auto* vi) {
        const CsrDu::Slice full = m.du().full();
        binding_.serial = [=](const value_t* x, value_t* y) {
          fn(full, vi, uq, x, y);
        };
        for (const CsrDu::Slice& s : du_slices_) {
          binding_.per_thread.push_back(
              [=](const value_t* x, value_t* y) { fn(s, vi, uq, x, y); });
        }
      };
      switch (m.width()) {
        case ViWidth::kU8:
          bind_slices(dt.du_vi_u8, m.val_ind_raw().data());
          break;
        case ViWidth::kU16:
          bind_slices(dt.du_vi_u16, m.val_ind_as<std::uint16_t>());
          break;
        case ViWidth::kU32:
          bind_slices(dt.du_vi_u32, m.val_ind_as<std::uint32_t>());
          break;
      }
      break;
    }
    case Format::kCoo: {
      // Not a dispatch-table format, but binding still pays: the
      // per-thread entry ranges (binary searches over the row array)
      // move from every run to here.
      const auto& m = std::get<Coo>(matrix_);
      const index_t* rr = m.rows().data();
      const index_t* cc = m.cols().data();
      const value_t* vv = m.values().data();
      const usize_t nnz = m.nnz();
      binding_.serial = [=](const value_t* x, value_t* y) {
        std::fill(y, y + nrows, 0.0);
        for (usize_t k = 0; k < nnz; ++k) {
          y[rr[k]] += vv[k] * x[cc[k]];
        }
      };
      for (std::size_t th = 0; th < partition_.nthreads(); ++th) {
        const index_t r0 = partition_.row_begin(th);
        const index_t r1 = partition_.row_end(th);
        const auto& rows = m.rows();
        const usize_t lo = static_cast<usize_t>(
            std::lower_bound(rows.begin(), rows.end(), r0) - rows.begin());
        const usize_t hi = static_cast<usize_t>(
            std::lower_bound(rows.begin(), rows.end(), r1) - rows.begin());
        binding_.per_thread.push_back([=](const value_t* x, value_t* y) {
          std::fill(y + r0, y + r1, 0.0);
          for (usize_t k = lo; k < hi; ++k) {
            y[rr[k]] += vv[k] * x[cc[k]];
          }
        });
      }
      break;
    }
    case Format::kDcsr: {
      const auto& m = std::get<Dcsr>(matrix_);
      const Dcsr::Slice full = m.full();
      binding_.serial = [=](const value_t* x, value_t* y) {
        spmv(full, x, y);
      };
      for (const Dcsr::Slice& s : dcsr_slices_) {
        binding_.per_thread.push_back(
            [=](const value_t* x, value_t* y) { spmv(s, x, y); });
      }
      break;
    }
    case Format::kCsc:
      // Two-phase execution keeps its own path; precompute the
      // reduce-phase row split here instead of every run.
      if (nthreads_ > 1) {
        csc_reduce_rows_ = partition_rows_even(nrows_, nthreads_);
      }
      break;
    case Format::kBcsr:
    case Format::kEll:
    case Format::kDia:
    case Format::kJds:
      // Format-object kernels; executed via the run_parallel switch.
      break;
  }
}

usize_t SpmvInstance::matrix_bytes() const {
  return std::visit([](const auto& m) { return m.bytes(); }, matrix_);
}

void SpmvInstance::run(const Vector& x, Vector& y) {
  SPC_CHECK_MSG(x.size() == ncols_, "x has wrong dimension");
  SPC_CHECK_MSG(y.size() == nrows_, "y has wrong dimension");
  // The always-on cost is one relaxed shard add (~10 ns). The per-run
  // latency sample needs two clock reads — noticeable on sub-µs tiny
  // kernels — so it only runs while an observability sink is active.
  const bool sample =
      obs::Tracer::global().enabled() || obs::MetricsSink::global().enabled();
  const std::uint64_t t0 = sample ? now_ns() : 0;
  if (nthreads_ == 1) {
    run_serial(x.data(), y.data());
  } else {
    run_parallel(x, y);
  }
  runs_counter_->add();
  if (sample) {
    const std::uint64_t t1 = now_ns();
    run_histo_->record(t1 >= t0 ? t1 - t0 : 0);
  }
}

void SpmvInstance::run_serial(const value_t* x, value_t* y) {
  if (binding_.bound()) {
    binding_.serial(x, y);
    return;
  }
  std::visit([&](const auto& m) { spmv(m, x, y); }, matrix_);
}

void SpmvInstance::run_parallel(const Vector& x, Vector& y) {
  const value_t* const xp = x.data();
  value_t* const yp = y.data();

  // Dispatch-bound formats: one indirect call per worker, everything
  // else was fixed by prepare().
  if (!binding_.per_thread.empty()) {
    dispatch([&](std::size_t th) { binding_.per_thread[th](xp, yp); });
    return;
  }

  switch (format_) {
    case Format::kCsc: {
      // Column partitioning with private y copies and a reduction (§II-C).
      const auto& m = std::get<Csc>(matrix_);
      dispatch([&](std::size_t th) {
        Vector& scratch = csc_scratch_[th];
        std::fill(scratch.begin(), scratch.end(), 0.0);
        spmv_csc_cols(m, xp, scratch.data(), partition_.row_begin(th),
                      partition_.row_end(th));
      });
      // Reduce: rows split evenly across threads (precomputed).
      dispatch([&](std::size_t th) {
        const index_t r0 = csc_reduce_rows_.row_begin(th);
        const index_t r1 = csc_reduce_rows_.row_end(th);
        std::fill(yp + r0, yp + r1, 0.0);
        for (const Vector& scratch : csc_scratch_) {
          const value_t* const sp = scratch.data();
          for (index_t r = r0; r < r1; ++r) {
            yp[r] += sp[r];
          }
        }
      });
      break;
    }
    case Format::kBcsr: {
      const auto& m = std::get<Bcsr>(matrix_);
      dispatch([&](std::size_t th) {
        spmv_bcsr_range(m, xp, yp, partition_.row_begin(th),
                        partition_.row_end(th));
      });
      break;
    }
    case Format::kEll: {
      const auto& m = std::get<Ell>(matrix_);
      dispatch([&](std::size_t th) {
        spmv_ell_range(m, xp, yp, partition_.row_begin(th),
                       partition_.row_end(th));
      });
      break;
    }
    case Format::kDia: {
      const auto& m = std::get<Dia>(matrix_);
      dispatch([&](std::size_t th) {
        spmv_dia_range(m, xp, yp, partition_.row_begin(th),
                       partition_.row_end(th));
      });
      break;
    }
    case Format::kJds: {
      const auto& m = std::get<Jds>(matrix_);
      dispatch([&](std::size_t th) {
        spmv_jds_range(m, xp, yp, partition_.row_begin(th),
                       partition_.row_end(th));
      });
      break;
    }
    case Format::kCsr:
    case Format::kCsr16:
    case Format::kCoo:
    case Format::kCsrDu:
    case Format::kCsrDuRle:
    case Format::kCsrVi:
    case Format::kCsrDuVi:
    case Format::kDcsr:
      // Always bound by prepare(); handled above.
      SPC_CHECK_MSG(false, "dispatch-bound format reached the switch");
      break;
  }
}

Vector spmv_simple(const Triplets& t, const Vector& x) {
  const Csr m = Csr::from_triplets(t);
  Vector y(t.nrows(), 0.0);
  spmv(m, x.data(), y.data());
  return y;
}

}  // namespace spc
