// SpMV for the symmetric format (§III-C).
//
// The implicit upper triangle makes the kernel scatter into y[col], so
// row ranges no longer write disjoint y — the multithreaded runner gives
// each thread a private y copy and reduces, the same pattern as column-
// partitioned CSC (§II-C).
#pragma once

#include <memory>
#include <vector>

#include "spc/formats/sym_csr.hpp"
#include "spc/mm/vector.hpp"
#include "spc/parallel/partition.hpp"
#include "spc/parallel/thread_pool.hpp"
#include "spc/support/first_touch.hpp"

namespace spc {

/// Serial kernel: y = A*x for the full (symmetric) matrix.
void spmv(const SymCsr& m, const value_t* x, value_t* y);

/// Row-range partial kernel over raw arrays — the common core of the
/// serial and per-thread paths. `row_ptr` and `diag` are indexed with
/// absolute rows (repacked per-thread copies pass rebased pointers, see
/// support/first_touch.hpp); `col_ind`/`values` with the positions
/// `row_ptr` yields.
void spmv_sym_rows_raw(const index_t* row_ptr, const index_t* col_ind,
                       const value_t* values, const value_t* diag,
                       const value_t* x, value_t* y, index_t row_begin,
                       index_t row_end);

/// Row-range partial kernel accumulating into y without zero-filling —
/// building block of the multithreaded path (y must be zeroed by the
/// caller; writes y[r] for r in range and scatters into y[c], c < r).
void spmv_sym_rows(const SymCsr& m, const value_t* x, value_t* y,
                   index_t row_begin, index_t row_end);

/// Prepared multithreaded symmetric SpMV (private-y + reduction).
class SymSpmv {
 public:
  /// `numa` resolves like SpmvInstance's: on a pinned multi-node run the
  /// per-thread row slices (and the private-y scratch) repack into
  /// first-touched node-local blocks. The scatter path has no x mirror,
  /// so replicate/interleave degrade to local placement here.
  explicit SymSpmv(const Triplets& t, std::size_t nthreads = 1,
                   bool pin_threads = false,
                   NumaPolicy numa = NumaPolicy::kAuto);

  index_t nrows() const { return m_.nrows(); }
  usize_t matrix_bytes() const { return m_.bytes(); }
  const SymCsr& matrix() const { return m_; }

  /// The placement actually in effect (kOff unless pinned and resolved).
  NumaPolicy numa_policy() const { return numa_policy_; }

  void run(const Vector& x, Vector& y);

 private:
  SymCsr m_;
  std::size_t nthreads_;
  RowPartition partition_;
  std::vector<Vector> scratch_;
  std::unique_ptr<ThreadPool> pool_;
  // NUMA repack (see instance.cpp): per-thread rebased array pointers
  // and arena-backed scratch replacing the master-touched Vectors.
  NumaPolicy numa_policy_ = NumaPolicy::kOff;
  std::unique_ptr<FirstTouchArena> arena_;
  struct ThreadArrays {
    const index_t* row_ptr = nullptr;
    const index_t* col_ind = nullptr;
    const value_t* values = nullptr;
    const value_t* diag = nullptr;
    value_t* scratch = nullptr;
  };
  std::vector<ThreadArrays> numa_;
};

}  // namespace spc
