// SpMV for the symmetric format (§III-C).
//
// The implicit upper triangle makes the kernel scatter into y[col], so
// row ranges no longer write disjoint y — the multithreaded runner gives
// each thread a private y copy and reduces, the same pattern as column-
// partitioned CSC (§II-C).
#pragma once

#include <memory>
#include <vector>

#include "spc/formats/sym_csr.hpp"
#include "spc/mm/vector.hpp"
#include "spc/parallel/partition.hpp"
#include "spc/parallel/thread_pool.hpp"

namespace spc {

/// Serial kernel: y = A*x for the full (symmetric) matrix.
void spmv(const SymCsr& m, const value_t* x, value_t* y);

/// Row-range partial kernel accumulating into y without zero-filling —
/// building block of the multithreaded path (y must be zeroed by the
/// caller; writes y[r] for r in range and scatters into y[c], c < r).
void spmv_sym_rows(const SymCsr& m, const value_t* x, value_t* y,
                   index_t row_begin, index_t row_end);

/// Prepared multithreaded symmetric SpMV (private-y + reduction).
class SymSpmv {
 public:
  explicit SymSpmv(const Triplets& t, std::size_t nthreads = 1,
                   bool pin_threads = false);

  index_t nrows() const { return m_.nrows(); }
  usize_t matrix_bytes() const { return m_.bytes(); }
  const SymCsr& matrix() const { return m_; }

  void run(const Vector& x, Vector& y);

 private:
  SymCsr m_;
  std::size_t nthreads_;
  RowPartition partition_;
  std::vector<Vector> scratch_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace spc
