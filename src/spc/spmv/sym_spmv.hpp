// SpMV for the symmetric formats (§III-C).
//
// The implicit upper triangle makes the kernel scatter into y[col], so
// row ranges no longer write disjoint y. Instead of the classic fix — a
// full private y copy per thread plus an O(nthreads x nrows) reduction —
// the runners here use a *bounded conflict window* (Batista et al.,
// arXiv:1003.0952): each thread writes its own row range directly into
// the shared y and scatters only into a compact buffer covering
// [win_begin, row_begin), the span its rows actually reach below its
// partition. The reduction then touches only the window rows, shrinking
// the reduction traffic from O(nthreads x nrows) to the conflict span —
// near zero on banded matrices. When windows degenerate toward ~nrows
// (e.g. a dense first column), the private-y path is still the cheaper
// one and remains as fallback.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "spc/mm/vector.hpp"
#include "spc/parallel/partition.hpp"
#include "spc/parallel/thread_pool.hpp"
#include "spc/spmv/kernels.hpp"
#include "spc/support/first_touch.hpp"

namespace spc {

/// Reduction strategy for the symmetric scatter conflicts.
enum class SymReduce : std::uint8_t {
  kAuto = 0,     ///< window unless the plan degenerates (see below)
  kWindow = 1,   ///< force the conflict-window path
  kPrivate = 2,  ///< force the full private-y path
};

/// Canonical lower-case name ("auto", "window", "private").
const char* sym_reduce_name(SymReduce r);

/// Parses a strategy name; returns false on unknown names, leaving *out
/// untouched.
bool parse_sym_reduce(const std::string& name, SymReduce* out);

/// `requested` overridden by SPC_SYM_REDUCE when set (an unparseable
/// value is diagnosed once to stderr and ignored).
SymReduce sym_reduce_from_env(SymReduce requested);

/// The per-thread conflict-window plan: thread t's scatters outside its
/// own rows all land in [win_begin[t], row_begin(t)).
struct SymWindowPlan {
  std::vector<index_t> win_begin;  ///< per thread; == row_begin when empty
  usize_t total_rows = 0;          ///< sum of window extents
  bool use_window = true;          ///< resolved mode after degeneracy check
};

/// Computes window extents from the lower-triangle CSR arrays: because
/// columns ascend within a row, a row's first entry is its minimum
/// scatter target, so thread t's window start is the minimum first
/// column over its rows (clamped to its row_begin). `requested` must
/// already be env-resolved; kAuto picks the window path unless the total
/// window span exceeds nthreads*nrows/2 — the point where the windows'
/// zero+write+read traffic stops undercutting the private-y sweep's by a
/// safe margin.
SymWindowPlan plan_sym_windows(const index_t* row_ptr,
                               const index_t* col_ind,
                               const RowPartition& partition,
                               std::size_t nthreads, index_t nrows,
                               SymReduce requested);

/// Row-range partial kernel over raw arrays (private/serial-mode
/// parameterization of spmv_sym_csr_win; kept for callers of the
/// pre-window API). y must be zeroed for rows outside the range that
/// scatters can reach; rows inside the range are assigned.
void spmv_sym_rows_raw(const index_t* row_ptr, const index_t* col_ind,
                       const value_t* values, const value_t* diag,
                       const value_t* x, value_t* y, index_t row_begin,
                       index_t row_end);

/// Row-range partial kernel over the format object (same contract).
void spmv_sym_rows(const SymCsr& m, const value_t* x, value_t* y,
                   index_t row_begin, index_t row_end);

/// Prepared multithreaded symmetric SpMV (conflict-window reduction,
/// private-y fallback).
class SymSpmv {
 public:
  /// `numa` resolves like SpmvInstance's: on a pinned multi-node run the
  /// per-thread row slices (and the window/scratch buffers) repack into
  /// first-touched node-local blocks. The scatter path has no x mirror,
  /// so replicate/interleave degrade to local placement here.
  explicit SymSpmv(const Triplets& t, std::size_t nthreads = 1,
                   bool pin_threads = false,
                   NumaPolicy numa = NumaPolicy::kAuto,
                   SymReduce reduce = SymReduce::kAuto);

  index_t nrows() const { return m_.nrows(); }
  usize_t matrix_bytes() const { return m_.bytes(); }
  const SymCsr& matrix() const { return m_; }

  /// The placement actually in effect (kOff unless pinned and resolved).
  NumaPolicy numa_policy() const { return numa_policy_; }
  /// The reduction path actually in effect (kWindow or kPrivate; kAuto
  /// never survives resolution). Single-threaded runs report kWindow
  /// with zero window rows.
  SymReduce reduce_mode() const { return reduce_mode_; }
  /// Total window rows across threads (0 in private mode).
  usize_t window_rows() const { return plan_.total_rows; }

  void run(const Vector& x, Vector& y);

 private:
  SymCsr m_;
  std::size_t nthreads_;
  RowPartition partition_;
  SymReduce reduce_mode_ = SymReduce::kWindow;
  SymWindowPlan plan_;
  // Window mode: per-thread conflict buffers sized to the window span.
  // Private mode: per-thread full-length y copies.
  std::vector<Vector> scratch_;
  std::unique_ptr<ThreadPool> pool_;
  // NUMA repack (see instance.cpp): per-thread rebased array pointers
  // and arena-backed buffers replacing the master-touched Vectors.
  NumaPolicy numa_policy_ = NumaPolicy::kOff;
  std::unique_ptr<FirstTouchArena> arena_;
  struct ThreadArrays {
    const index_t* row_ptr = nullptr;
    const index_t* col_ind = nullptr;
    const value_t* values = nullptr;
    const value_t* diag = nullptr;
    value_t* scratch = nullptr;  ///< window buffer or private y
  };
  std::vector<ThreadArrays> numa_;

  value_t* scratch_ptr(std::size_t th) {
    return numa_.empty() ? scratch_[th].data() : numa_[th].scratch;
  }
};

}  // namespace spc
