// An end-to-end production pipeline:
//
//   generate/load -> RCM reorder -> encode CSR-DU -> save container ->
//   reload (validated) -> multithreaded SpMV -> verify against CSR
//
// demonstrating how the reordering and serialization subsystems compose
// with the compressed formats: RCM shortens column deltas (better ctl
// compression), and the .spcm container amortizes encoding across runs.
//
// Usage: matrix_pipeline [n] [threads]
#include <cstdio>
#include <cstdlib>

#include "spc/formats/serialize.hpp"
#include "spc/gen/generators.hpp"
#include "spc/mm/reorder.hpp"
#include "spc/spmv/instance.hpp"
#include "spc/spmv/kernels.hpp"
#include "spc/support/strutil.hpp"

using namespace spc;

int main(int argc, char** argv) {
  const index_t n =
      argc > 1 ? static_cast<index_t>(std::atoi(argv[1])) : 20000;
  const std::size_t threads =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 2;

  // A banded matrix whose ordering has been destroyed — the situation
  // RCM exists for (e.g. a mesh numbered by an external tool).
  Rng rng(42);
  Triplets mat = gen_banded(n, 8, 6, rng, ValueModel::pooled(32));
  {
    std::vector<index_t> idx(n);
    for (index_t i = 0; i < n; ++i) {
      idx[i] = i;
    }
    Rng pr(7);
    std::shuffle(idx.begin(), idx.end(), pr);
    mat = permute_symmetric(mat, Permutation(idx));
  }
  std::printf("matrix: %u x %u, %llu nnz, bandwidth %llu (scrambled)\n",
              mat.nrows(), mat.ncols(),
              static_cast<unsigned long long>(mat.nnz()),
              static_cast<unsigned long long>(pattern_bandwidth(mat)));

  // 1. RCM reordering.
  const Permutation rcm = rcm_ordering(mat);
  const Triplets reordered = permute_symmetric(mat, rcm);
  std::printf("after RCM: bandwidth %llu\n",
              static_cast<unsigned long long>(
                  pattern_bandwidth(reordered)));

  // 2. Encode both versions as CSR-DU and compare the ctl streams.
  const CsrDu du_before = CsrDu::from_triplets(mat);
  const CsrDu du_after = CsrDu::from_triplets(reordered);
  std::printf("ctl stream: %s scrambled -> %s reordered (%.1f%% smaller)\n",
              human_bytes(du_before.ctl_bytes()).c_str(),
              human_bytes(du_after.ctl_bytes()).c_str(),
              100.0 * (1.0 - static_cast<double>(du_after.ctl_bytes()) /
                                 static_cast<double>(
                                     du_before.ctl_bytes())));

  // 3. Persist the encoded matrix and reload it (full validation on the
  //    way in — a corrupted container throws instead of crashing).
  const std::string path = "/tmp/spc_pipeline.spcm";
  save_file(du_after, path);
  const CsrDu loaded = load_csr_du_file(path);
  std::printf("container: wrote and reloaded %s (%llu units)\n",
              path.c_str(),
              static_cast<unsigned long long>(loaded.unit_count()));

  // 4. Multithreaded SpMV on the reordered system, checked against CSR
  //    in the original ordering: un-permuting the result must match.
  InstanceOptions opts;
  opts.pin_threads = false;
  SpmvInstance compressed(reordered, Format::kCsrDu, threads, opts);
  SpmvInstance reference(mat, Format::kCsr, 1, opts);

  Rng xr(3);
  const Vector x = random_vector(n, xr);
  const Vector px = permute_vector(x, rcm);

  Vector py(n, 0.0), y_ref(n, 0.0);
  compressed.run(px, py);
  reference.run(x, y_ref);
  const Vector y = unpermute_vector(py, rcm);
  const double err = rel_error(y_ref, y);
  std::printf("verification: max relative error vs CSR = %.2e %s\n", err,
              err < 1e-12 ? "(OK)" : "(MISMATCH!)");
  return err < 1e-12 ? 0 : 1;
}
