// Lists the experiment corpus (the stand-in for the paper's 77-matrix UF
// suite): per-matrix statistics, working sets and the MS / ML / rejected
// classification of §VI-B, plus the M0vi (ttu > 5) membership of §VI-E.
//
// Scale via SPC_SCALE (tiny / small / bench); default small.
#include <cstdio>

#include "spc/bench/harness.hpp"
#include "spc/formats/csr_vi.hpp"
#include "spc/support/strutil.hpp"

using namespace spc;

int main() {
  const BenchConfig cfg = BenchConfig::from_env();
  const SetThresholds th = cfg.thresholds();
  std::printf("corpus scale: %s\n", cfg.describe().c_str());
  std::printf("%-13s %-10s %9s %10s %10s %6s %5s %5s\n", "name", "class",
              "nrows", "nnz", "ws", "ttu", "set", "vi?");

  std::size_t ms = 0, ml = 0, rej = 0, vi = 0;
  for_each_matrix(
      cfg,
      [&](MatrixCase& mc) {
        const char* set = "rej";
        switch (mc.set_class) {
          case SetClass::kSmall:
            set = "MS";
            ++ms;
            break;
          case SetClass::kLarge:
            set = "ML";
            ++ml;
            break;
          case SetClass::kRejected:
            ++rej;
            break;
        }
        const bool vi_ok = mc.stats.ttu > kViTtuThreshold;
        vi += vi_ok;
        std::printf("%-13s %-10s %9u %10llu %10s %6.1f %5s %5s\n",
                    mc.name.c_str(), mc.cls.c_str(), mc.stats.nrows,
                    static_cast<unsigned long long>(mc.stats.nnz),
                    human_bytes(mc.ws).c_str(), mc.stats.ttu, set,
                    vi_ok ? "yes" : "no");
      },
      /*apply_rejection=*/false);

  std::printf("\nsets: MS %zu, ML %zu, rejected %zu (reject ws < %s, ML "
              "at ws >= %s)\n",
              ms, ml, rej, human_bytes(th.reject_below).c_str(),
              human_bytes(th.large_at_least).c_str());
  std::printf("M0vi (ttu > 5): %zu of %zu — the paper reports ~39%% of its "
              "suite\n",
              vi, ms + ml + rej);
  return 0;
}
