// PageRank on a power-law web graph — the paper's conclusion argues the
// compression methodology extends to "memory intensive problems (e.g.
// graph or database algorithms)"; this example makes that concrete.
//
// The PageRank iteration is y = alpha·Pᵀx + teleport, i.e. an SpMV per
// step. The transition matrix P has values 1/outdegree(v) — one distinct
// value per distinct out-degree, which for power-law graphs means a few
// hundred unique values among millions of non-zeros: exactly CSR-VI's
// applicability regime (ttu >> 5).
//
// Usage: pagerank [scale] [edges-per-vertex] [threads]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "spc/gen/generators.hpp"
#include "spc/mm/ops.hpp"
#include "spc/mm/stats.hpp"
#include "spc/spmv/instance.hpp"
#include "spc/support/strutil.hpp"
#include "spc/support/timing.hpp"

using namespace spc;

int main(int argc, char** argv) {
  const std::uint32_t scale =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 15;
  const usize_t epv =
      argc > 2 ? static_cast<usize_t>(std::atoi(argv[2])) : 12;
  const std::size_t threads =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 2;
  const double alpha = 0.85;

  // Web-like adjacency, then column-stochastic transpose P^T so that
  // rank flows along in-links: PageRank x = alpha P^T x + (1-alpha)/n.
  Rng rng(7);
  const index_t n = index_t{1} << scale;
  Triplets adj = gen_rmat(scale, n * epv, rng, ValueModel::pooled(1));
  std::vector<index_t> outdeg(n, 0);
  for (const Entry& e : adj.entries()) {
    ++outdeg[e.row];
  }
  Triplets pt(n, n);
  pt.reserve(adj.nnz());
  for (const Entry& e : adj.entries()) {
    pt.add(e.col, e.row, 1.0 / static_cast<double>(outdeg[e.row]));
  }
  pt.sort_and_combine();

  const MatrixStats s = compute_stats(pt);
  std::printf("graph: %u vertices, %llu edges; transition matrix has %llu "
              "unique values (ttu %.0f) -> CSR-VI %s\n",
              n, static_cast<unsigned long long>(pt.nnz()),
              static_cast<unsigned long long>(s.unique_values), s.ttu,
              s.ttu > 5 ? "applicable" : "not applicable");

  InstanceOptions opts;
  opts.pin_threads = false;
  for (const Format f : {Format::kCsr, Format::kCsrVi, Format::kCsrDuVi}) {
    SpmvInstance P(pt, f, threads, opts);
    Vector x(n, 1.0 / n), y(n, 0.0);
    Timer timer;
    std::size_t iters = 0;
    double delta = 1.0;
    while (delta > 1e-10 && iters < 200) {
      P.run(x, y);
      // y = alpha*y + teleport mass (dangling mass folded into teleport).
      double dangling = 0.0;
      for (index_t v = 0; v < n; ++v) {
        if (outdeg[v] == 0) {
          dangling += x[v];
        }
      }
      const double base = (1.0 - alpha) / n + alpha * dangling / n;
      delta = 0.0;
      for (index_t v = 0; v < n; ++v) {
        const double nv = alpha * y[v] + base;
        delta += std::fabs(nv - x[v]);
        x[v] = nv;
      }
      ++iters;
    }
    // Report the top vertex as a sanity anchor.
    index_t top = 0;
    for (index_t v = 1; v < n; ++v) {
      if (x[v] > x[top]) {
        top = v;
      }
    }
    std::printf("%-10s x%zu: %3zu iterations, %6.2fs, matrix %9s, "
                "top vertex %u (rank %.2e)\n",
                format_name(f).c_str(), threads, iters, timer.elapsed_s(),
                human_bytes(P.matrix_bytes()).c_str(), top, x[top]);
  }
  return 0;
}
