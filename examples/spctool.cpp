// spctool — command-line front end to the library.
//
//   spctool inspect  <matrix>
//       print statistics, the §II-B working-set model and per-format sizes
//   spctool convert  <matrix> <out.spcm> [--format csr|csr-du|csr-vi] [--rcm]
//       encode (optionally RCM-reordered) and write an .spcm container
//   spctool spmv     <matrix> [--format F|auto] [--threads N] [--iters K]
//       time y = A*x (the paper's measurement protocol); --format auto
//       (or SPC_TUNE=1 with no --format) runs the spc::tune autotuner
//   spctool reorder  <in> <out.mtx>
//       write the RCM-reordered matrix in Matrix Market form
//
// <matrix> is a .mtx file, an .spcm container (csr/csr-du/csr-vi), or
// corpus:<name> (scale via SPC_SCALE).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "spc/bench/harness.hpp"
#include "spc/formats/serialize.hpp"
#include "spc/gen/corpus.hpp"
#include "spc/mm/mtx.hpp"
#include "spc/mm/reorder.hpp"
#include "spc/mm/stats.hpp"
#include "spc/spmv/instance.hpp"
#include "spc/support/env.hpp"
#include "spc/support/strutil.hpp"
#include "spc/support/timing.hpp"
#include "spc/tune/tuner.hpp"

using namespace spc;

namespace {

Triplets load_any(const std::string& arg) {
  if (arg.rfind("corpus:", 0) == 0) {
    return corpus_spec(arg.substr(7), BenchConfig::from_env().scale)
        .build();
  }
  if (arg.size() > 5 && arg.substr(arg.size() - 5) == ".spcm") {
    std::ifstream f(arg, std::ios::binary);
    if (!f) {
      throw Error("cannot open: " + arg);
    }
    index_t nrows = 0, ncols = 0;
    const SpcmTag tag = read_spcm_header(f, &nrows, &ncols);
    f.seekg(0);
    switch (tag) {
      case SpcmTag::kCsr:
        return load_csr(f).to_triplets();
      case SpcmTag::kCsrDu:
        return load_csr_du(f).to_triplets();
      case SpcmTag::kCsrVi:
        return load_csr_vi(f).to_triplets();
      case SpcmTag::kCsrDuVi:
        return load_csr_du_vi(f).to_triplets();
    }
    throw ParseError("unknown container tag");
  }
  return read_matrix_market_file(arg);
}

std::string flag_value(std::vector<std::string>& args,
                       const std::string& name,
                       const std::string& fallback) {
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == name) {
      std::string v = args[i + 1];
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      return v;
    }
  }
  return fallback;
}

bool flag_present(std::vector<std::string>& args, const std::string& name) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == name) {
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

int cmd_inspect(std::vector<std::string> args) {
  if (args.empty()) {
    std::fprintf(stderr, "usage: spctool inspect <matrix>\n");
    return 2;
  }
  const Triplets t = load_any(args[0]);
  const MatrixStats s = compute_stats(t);
  std::printf("%s: %u x %u, %llu nnz\n", args[0].c_str(), s.nrows, s.ncols,
              static_cast<unsigned long long>(s.nnz));
  std::printf("  rows: mean %.1f / min %u / max %u / empty %u, bandwidth "
              "%llu\n",
              s.row_len_mean, s.row_len_min, s.row_len_max, s.empty_rows,
              static_cast<unsigned long long>(s.bandwidth));
  std::printf("  working set %s, unique values %llu (ttu %.1f), u8 "
              "deltas %.1f%%\n",
              human_bytes(s.working_set_bytes()).c_str(),
              static_cast<unsigned long long>(s.unique_values), s.ttu,
              100.0 * s.u8_delta_fraction());
  SpmvInstance csr(t, Format::kCsr);
  for (const Format f :
       {Format::kCsr, Format::kCsrDu, Format::kCsrVi, Format::kCsrDuVi,
        Format::kDcsr}) {
    SpmvInstance inst(t, f);
    std::printf("  %-10s %10s (%.3f of csr)\n", format_name(f).c_str(),
                human_bytes(inst.matrix_bytes()).c_str(),
                static_cast<double>(inst.matrix_bytes()) /
                    static_cast<double>(csr.matrix_bytes()));
  }
  return 0;
}

int cmd_convert(std::vector<std::string> args) {
  const std::string fmt = flag_value(args, "--format", "csr-du");
  const bool rcm = flag_present(args, "--rcm");
  if (args.size() < 2) {
    std::fprintf(stderr,
                 "usage: spctool convert <matrix> <out.spcm> "
                 "[--format csr|csr-du|csr-vi] [--rcm]\n");
    return 2;
  }
  Triplets t = load_any(args[0]);
  if (rcm) {
    const Permutation p = rcm_ordering(t);
    t = permute_symmetric(t, p);
    std::printf("applied RCM: bandwidth now %llu\n",
                static_cast<unsigned long long>(pattern_bandwidth(t)));
  }
  const Format f = parse_format(fmt);
  usize_t bytes = 0;
  if (f == Format::kCsr) {
    const Csr m = Csr::from_triplets(t);
    save_file(m, args[1]);
    bytes = m.bytes();
  } else if (f == Format::kCsrDu) {
    const CsrDu m = CsrDu::from_triplets(t);
    save_file(m, args[1]);
    bytes = m.bytes();
  } else if (f == Format::kCsrVi) {
    const CsrVi m = CsrVi::from_triplets(t);
    save_file(m, args[1]);
    bytes = m.bytes();
  } else if (f == Format::kCsrDuVi) {
    const CsrDuVi m = CsrDuVi::from_triplets(t);
    save_file(m, args[1]);
    bytes = m.bytes();
  } else {
    std::fprintf(stderr,
                 "convert supports csr, csr-du, csr-vi, csr-du-vi\n");
    return 2;
  }
  std::printf("wrote %s: %s as %s\n", args[1].c_str(),
              human_bytes(bytes).c_str(), fmt.c_str());
  return 0;
}

int cmd_spmv(std::vector<std::string> args) {
  // No explicit --format defers to SPC_TUNE; an explicit hand-picked
  // format is always honored as written.
  std::string fmt = flag_value(args, "--format", "");
  if (fmt.empty()) {
    fmt = tune::tune_enabled() ? "auto" : "csr";
  }
  const std::size_t threads =
      std::stoull(flag_value(args, "--threads", "1"));
  const std::size_t iters = std::stoull(flag_value(args, "--iters", "128"));
  if (args.empty()) {
    std::fprintf(stderr,
                 "usage: spctool spmv <matrix> [--format F|auto] "
                 "[--threads N] [--iters K]\n");
    return 2;
  }
  const Triplets t = load_any(args[0]);
  InstanceOptions opts;
  opts.pin_threads = false;
  const bool auto_fmt = fmt == "auto";
  tune::TuneReport rep;
  SpmvInstance inst =
      auto_fmt ? tune::auto_instance(t, threads, opts, {}, &rep)
               : SpmvInstance(t, parse_format(fmt), threads, opts);
  if (auto_fmt) {
    fmt = "auto:" + format_name(inst.format());
    std::printf("autotuner chose %s (%s%s, %.1f ms tuning)\n",
                format_name(inst.format()).c_str(), rep.source.c_str(),
                rep.cache_hit ? ", cache hit" : "",
                static_cast<double>(rep.probe_ns) * 1e-6);
  }
  const double secs = time_spmv(inst, iters, 2);
  std::printf("%s  %s  x%zu: %zu ops in %.3fs — %.1f MFLOPS, %.3f ms/op, "
              "matrix %s\n",
              args[0].c_str(), fmt.c_str(), threads, iters, secs,
              mflops(t.nnz(), iters, secs),
              secs * 1e3 / static_cast<double>(iters),
              human_bytes(inst.matrix_bytes()).c_str());
  return 0;
}

int cmd_reorder(std::vector<std::string> args) {
  if (args.size() < 2) {
    std::fprintf(stderr, "usage: spctool reorder <in> <out.mtx>\n");
    return 2;
  }
  Triplets t = load_any(args[0]);
  const usize_t before = pattern_bandwidth(t);
  t = permute_symmetric(t, rcm_ordering(t));
  write_matrix_market_file(t, args[1]);
  std::printf("bandwidth %llu -> %llu, wrote %s\n",
              static_cast<unsigned long long>(before),
              static_cast<unsigned long long>(pattern_bandwidth(t)),
              args[1].c_str());
  return 0;
}

// Prints the SPC_* environment-variable table exactly as docs/API.md
// embeds it — regenerate the doc by pasting this output between its
// generated-table markers (api_surface_test enforces the match).
int cmd_env_table() {
  std::fputs(env_registry_markdown().c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: spctool <inspect|convert|spmv|reorder|env-table> "
                 "...\n");
    return 2;
  }
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "env-table") {
      return cmd_env_table();
    }
    if (cmd == "inspect") {
      return cmd_inspect(std::move(args));
    }
    if (cmd == "convert") {
      return cmd_convert(std::move(args));
    }
    if (cmd == "spmv") {
      return cmd_spmv(std::move(args));
    }
    if (cmd == "reorder") {
      return cmd_reorder(std::move(args));
    }
    std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
