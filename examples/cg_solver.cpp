// Conjugate Gradient on a 2D Poisson problem — the iterative-solver
// context the paper's introduction motivates. The solver is format-
// agnostic: it runs the same CG loop against CSR and against the
// compressed formats (whose SpMV dominates CG's runtime) and reports
// iterations, residuals, wall time and the operator's memory footprint.
//
// Usage: cg_solver [grid_n] [threads]
#include <cstdio>
#include <cstdlib>

#include "spc/gen/generators.hpp"
#include "spc/solvers/iterative.hpp"
#include "spc/spmv/instance.hpp"
#include "spc/support/strutil.hpp"
#include "spc/support/timing.hpp"

using namespace spc;

int main(int argc, char** argv) {
  const index_t grid = argc > 1 ? static_cast<index_t>(std::atoi(argv[1]))
                                : 160;
  const std::size_t threads =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 2;

  // -Laplace(u) = f on a grid x grid domain, Dirichlet boundary.
  const Triplets A = gen_laplacian_2d(grid, grid);
  std::printf("2D Poisson, %ux%u grid: %u unknowns, %llu non-zeros\n",
              grid, grid, A.nrows(),
              static_cast<unsigned long long>(A.nnz()));

  // Right-hand side: a point source in the middle plus a smooth term.
  Vector b(A.nrows(), 1.0 / (grid * grid));
  b[(grid / 2) * grid + grid / 2] = 1.0;

  SolverOptions sopts;
  sopts.max_iterations = 4000;
  sopts.rel_tolerance = 1e-8;

  std::printf("%-10s %8s %7s %12s %10s %10s\n", "format", "threads",
              "iters", "residual", "time", "operator");
  for (const Format f :
       {Format::kCsr, Format::kCsrDu, Format::kCsrVi, Format::kCsrDuVi}) {
    InstanceOptions opts;
    opts.pin_threads = false;
    SpmvInstance op(A, f, threads, opts);
    Vector x(A.nrows(), 0.0);
    Timer timer;
    const SolveResult r = cg(
        [&op](const Vector& in, Vector& out) { op.run(in, out); }, b, x,
        sopts);
    std::printf("%-10s %8zu %7zu %12.3e %9.2fs %10s%s\n",
                format_name(f).c_str(), threads, r.iterations,
                r.residual_norm, timer.elapsed_s(),
                human_bytes(op.matrix_bytes()).c_str(),
                r.converged ? "" : "  (NOT CONVERGED)");
  }
  std::printf(
      "\nAll formats run the identical CG iteration; the compressed\n"
      "operators reduce the memory traffic of the dominant SpMV step.\n");
  return 0;
}
