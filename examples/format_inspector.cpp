// Inspects a sparse matrix: structural statistics, the §II-B working-set
// model, compressibility predictors (delta classes, ttu) and the actual
// encoded size of every format, with the paper's applicability rules
// annotated.
//
// Usage:
//   format_inspector <file.mtx>        inspect a Matrix Market file
//   format_inspector corpus:<name>     inspect a corpus recipe
//                                      (scale via SPC_SCALE, default small)
#include <cstdio>
#include <cstring>
#include <string>

#include "spc/bench/harness.hpp"
#include "spc/formats/csr_vi.hpp"
#include "spc/gen/corpus.hpp"
#include "spc/mm/mtx.hpp"
#include "spc/mm/stats.hpp"
#include "spc/spmv/instance.hpp"
#include "spc/support/strutil.hpp"

using namespace spc;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <file.mtx> | corpus:<name>\n"
                 "corpus names: ",
                 argv[0]);
    for (const auto& s : corpus_specs(CorpusScale::kSmall)) {
      std::fprintf(stderr, "%s ", s.name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }

  const std::string arg = argv[1];
  Triplets t;
  if (arg.rfind("corpus:", 0) == 0) {
    const BenchConfig cfg = BenchConfig::from_env();
    t = corpus_spec(arg.substr(7), cfg.scale).build();
  } else {
    t = read_matrix_market_file(arg);
  }

  const MatrixStats s = compute_stats(t);
  std::printf("matrix: %s\n", arg.c_str());
  std::printf("  dims: %u x %u, nnz %llu, empty rows %u\n", s.nrows,
              s.ncols, static_cast<unsigned long long>(s.nnz),
              s.empty_rows);
  std::printf("  row length: mean %.1f, stddev %.1f, min %u, max %u\n",
              s.row_len_mean, s.row_len_stddev, s.row_len_min,
              s.row_len_max);
  std::printf("  bandwidth: %llu\n",
              static_cast<unsigned long long>(s.bandwidth));
  std::printf("  working set (paper formula): %s  [csr arrays %s + "
              "vectors]\n",
              human_bytes(s.working_set_bytes()).c_str(),
              human_bytes(s.csr_bytes()).c_str());

  std::printf("  column delta classes: ");
  const char* cls_names[4] = {"u8", "u16", "u32", "u64"};
  std::uint64_t total_deltas = 0;
  for (const auto c : s.delta_class_count) {
    total_deltas += c;
  }
  for (int c = 0; c < 4; ++c) {
    if (s.delta_class_count[c] > 0) {
      std::printf("%s %.1f%%  ", cls_names[c],
                  100.0 * static_cast<double>(s.delta_class_count[c]) /
                      static_cast<double>(total_deltas));
    }
  }
  std::printf("\n  unique values: %llu (ttu %.2f) — CSR-VI %s (paper rule "
              "ttu > 5)\n\n",
              static_cast<unsigned long long>(s.unique_values), s.ttu,
              s.ttu > kViTtuThreshold ? "APPLICABLE" : "not applicable");

  std::printf("%-11s %12s %9s\n", "format", "bytes", "vs csr");
  SpmvInstance csr(t, Format::kCsr);
  const double csr_b = static_cast<double>(csr.matrix_bytes());
  for (const Format f : all_formats()) {
    // Guard the padded formats against pathological blowup; report the
    // refusal instead of allocating gigabytes.
    InstanceOptions opts;
    opts.ell_max_width_factor = 24.0;
    opts.dia_max_diags = 2048;
    try {
      SpmvInstance inst(t, f, 1, opts);
      std::printf("%-11s %12llu %9.3f\n", format_name(f).c_str(),
                  static_cast<unsigned long long>(inst.matrix_bytes()),
                  static_cast<double>(inst.matrix_bytes()) / csr_b);
    } catch (const Error&) {
      std::printf("%-11s %12s %9s\n", format_name(f).c_str(), "-", "n/a");
    }
  }
  return 0;
}
