// Quickstart: the library's public API through its facade header, on the
// paper's own 6x6 example matrix (Fig 1).
//
//  1. build a sparse matrix from triplets,
//  2. inspect its CSR / CSR-DU / CSR-VI encodings (Fig 1, Table I, Fig 4),
//  3. run y = A*x directly through SpmvInstance in every format,
//  4. serve the same matrix (and a generated second tenant) through
//     spc::engine::Engine — register, submit, await futures, read stats.
#include <cstdio>
#include <cstdlib>

#include "spc/spc.hpp"

using namespace spc;

int main() {
  // The matrix of Fig 1 in the paper.
  Triplets t(6, 6);
  const double rows[6][6] = {
      {5.4, 1.1, 0, 0, 0, 0},   {0, 6.3, 0, 7.7, 0, 8.8},
      {0, 0, 1.1, 0, 0, 0},     {0, 0, 2.9, 0, 3.7, 2.9},
      {9.0, 0, 0, 1.1, 4.5, 0}, {1.1, 0, 2.9, 3.7, 0, 1.1}};
  for (index_t r = 0; r < 6; ++r) {
    for (index_t c = 0; c < 6; ++c) {
      if (rows[r][c] != 0.0) {
        t.add(r, c, rows[r][c]);
      }
    }
  }
  t.sort_and_combine();

  // --- CSR (Fig 1) ---
  const Csr csr = Csr::from_triplets(t);
  std::printf("CSR row_ptr: ");
  for (const auto v : csr.row_ptr()) {
    std::printf("%u ", v);
  }
  std::printf("\nCSR col_ind: ");
  for (const auto v : csr.col_ind()) {
    std::printf("%u ", v);
  }
  std::printf("\nCSR bytes: %llu\n\n",
              static_cast<unsigned long long>(csr.bytes()));

  // --- CSR-DU units (Table I) ---
  const CsrDu du = CsrDu::from_triplets(t);
  std::printf("CSR-DU: %llu units, ctl %llu bytes (col_ind was %llu)\n",
              static_cast<unsigned long long>(du.unit_count()),
              static_cast<unsigned long long>(du.ctl_bytes()),
              static_cast<unsigned long long>(csr.nnz() * 4));

  // --- CSR-VI value indirection (Fig 4) ---
  const CsrVi vi = CsrVi::from_triplets(t);
  std::printf("CSR-VI: %llu unique values (ttu %.2f), index width %u "
              "byte(s)\n\n",
              static_cast<unsigned long long>(vi.unique_count()), vi.ttu(),
              static_cast<unsigned>(vi.width()));

  // --- Direct execution: SpmvInstance in every format ---
  Vector x = {1, 2, 3, 4, 5, 6};
  for (const Format f : all_formats()) {
    if (format_requires_symmetry(f) && !SymCsr::applicable(t)) {
      std::printf("%-10s skipped: matrix is not symmetric\n",
                  format_name(f).c_str());
      continue;
    }
    InstanceOptions opts;
    opts.pin_threads = false;
    const Status vst = opts.validate();
    if (!vst.ok()) {
      std::printf("bad options: %s\n", vst.to_string().c_str());
      return 1;
    }
    SpmvInstance inst(t, f, 2, opts);
    Vector y(6, 0.0);
    inst.run(x, y);
    std::printf("%-10s x2: y = [", format_name(f).c_str());
    for (const auto v : y) {
      std::printf(" %6.2f", v);
    }
    std::printf(" ]  (matrix %llu bytes)\n",
                static_cast<unsigned long long>(inst.matrix_bytes()));
  }

  // --- Serving: one engine, one shared pool, many matrices ---
  engine::EngineOptions eopts;
  eopts.pool_threads = 2;
  eopts.pin_threads = false;  // example must run inside restricted cpusets
  engine::Engine eng(eopts);

  Status st = eng.register_matrix("fig1", t);
  if (!st.ok()) {
    std::printf("register fig1: %s\n", st.to_string().c_str());
    return 1;
  }
  // A second tenant from the generator suite, autotuned: the engine asks
  // the tuner for the format, then prepares it against the shared pool.
  engine::RegisterOptions ropts;
  ropts.auto_format = true;
  ropts.warm_runs = 1;
  st = eng.register_matrix("lap2d", gen_laplacian_2d(16, 16), ropts);
  if (!st.ok()) {
    std::printf("register lap2d: %s\n", st.to_string().c_str());
    return 1;
  }

  // Async: submit returns a Future immediately.
  engine::Future f1 = eng.submit("fig1", x);
  engine::Future f2 = eng.submit("lap2d", const_vector(16 * 16, 1.0));
  std::printf("\nengine fig1: status=%s y = [", f1.status().to_string().c_str());
  for (const auto v : f1.value()) {
    std::printf(" %6.2f", v);
  }
  std::printf(" ]\n");
  std::printf("engine lap2d: status=%s (%zu elements, queued %llu ns)\n",
              f2.status().to_string().c_str(), f2.value().size(),
              static_cast<unsigned long long>(f2.queue_ns()));

  // Sync convenience + error surfacing as Status, not exceptions.
  Vector y;
  st = eng.run_sync("fig1", x, &y);
  std::printf("run_sync fig1: %s\n", st.to_string().c_str());
  st = eng.run_sync("nope", x, &y);
  std::printf("run_sync nope: %s\n", st.to_string().c_str());

  engine::Engine::MatrixInfo info;
  if (eng.matrix_info("lap2d", &info).ok()) {
    std::printf("lap2d resolved to %s (tuned=%d source=%s), %llu runs\n",
                format_name(info.format).c_str(), info.tuned ? 1 : 0,
                info.tune_source.c_str(),
                static_cast<unsigned long long>(info.runs));
  }

  eng.drain();
  const engine::Engine::Stats stats = eng.stats();
  std::printf("engine stats: submitted=%llu completed=%llu rejected=%llu\n",
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.rejected));
  eng.shutdown();
  return 0;
}
