// Quickstart: the library's public API on the paper's own 6x6 example
// matrix (Fig 1).
//
//  1. build a sparse matrix from triplets,
//  2. inspect its CSR / CSR-DU / CSR-VI encodings (Fig 1, Table I, Fig 4),
//  3. run y = A*x serially and with 4 threads in each format.
#include <cstdio>
#include <cstdlib>

#include "spc/formats/csr.hpp"
#include "spc/formats/csr_du.hpp"
#include "spc/formats/csr_vi.hpp"
#include "spc/spmv/instance.hpp"

using namespace spc;

int main() {
  // The matrix of Fig 1 in the paper.
  Triplets t(6, 6);
  const double rows[6][6] = {
      {5.4, 1.1, 0, 0, 0, 0},   {0, 6.3, 0, 7.7, 0, 8.8},
      {0, 0, 1.1, 0, 0, 0},     {0, 0, 2.9, 0, 3.7, 2.9},
      {9.0, 0, 0, 1.1, 4.5, 0}, {1.1, 0, 2.9, 3.7, 0, 1.1}};
  for (index_t r = 0; r < 6; ++r) {
    for (index_t c = 0; c < 6; ++c) {
      if (rows[r][c] != 0.0) {
        t.add(r, c, rows[r][c]);
      }
    }
  }
  t.sort_and_combine();

  // --- CSR (Fig 1) ---
  const Csr csr = Csr::from_triplets(t);
  std::printf("CSR row_ptr: ");
  for (const auto v : csr.row_ptr()) {
    std::printf("%u ", v);
  }
  std::printf("\nCSR col_ind: ");
  for (const auto v : csr.col_ind()) {
    std::printf("%u ", v);
  }
  std::printf("\nCSR bytes: %llu\n\n",
              static_cast<unsigned long long>(csr.bytes()));

  // --- CSR-DU units (Table I) ---
  const CsrDu du = CsrDu::from_triplets(t);
  std::printf("CSR-DU: %llu units, ctl %llu bytes (col_ind was %llu)\n",
              static_cast<unsigned long long>(du.unit_count()),
              static_cast<unsigned long long>(du.ctl_bytes()),
              static_cast<unsigned long long>(csr.nnz() * 4));
  std::printf("unit | flags      | usize | ujmp | ucis\n");
  for (const auto& u : du.decode_units()) {
    std::printf("     | u%-2u%s%s | %5u | %4llu | ",
                8u << static_cast<unsigned>(u.cls),
                u.new_row ? ", NR" : "    ", u.rle ? ", RLE" : "",
                u.usize, static_cast<unsigned long long>(u.ujmp));
    for (const auto d : u.ucis) {
      std::printf("%llu ", static_cast<unsigned long long>(d));
    }
    std::printf("\n");
  }

  // --- CSR-VI value indirection (Fig 4) ---
  const CsrVi vi = CsrVi::from_triplets(t);
  std::printf("\nCSR-VI: %llu unique values (ttu %.2f), index width %u "
              "byte(s)\n vals_unique: ",
              static_cast<unsigned long long>(vi.unique_count()), vi.ttu(),
              static_cast<unsigned>(vi.width()));
  for (const auto v : vi.vals_unique()) {
    std::printf("%.1f ", v);
  }
  std::printf("\n val_ind: ");
  for (usize_t k = 0; k < vi.nnz(); ++k) {
    std::printf("%u ", vi.val_ind_raw()[k]);
  }
  std::printf("\n\n");

  // --- SpMV in every format, serial and multithreaded ---
  Vector x = {1, 2, 3, 4, 5, 6};
  for (const Format f : all_formats()) {
    if (format_requires_symmetry(f) && !SymCsr::applicable(t)) {
      std::printf("%-10s skipped: matrix is not symmetric\n",
                  format_name(f).c_str());
      continue;
    }
    for (const std::size_t threads : {1u, 4u}) {
      InstanceOptions opts;
      opts.pin_threads = false;
      SpmvInstance inst(t, f, threads, opts);
      Vector y(6, 0.0);
      inst.run(x, y);
      std::printf("%-10s x%zu: y = [", format_name(f).c_str(), threads);
      for (const auto v : y) {
        std::printf(" %6.2f", v);
      }
      std::printf(" ]  (matrix %llu bytes)\n",
                  static_cast<unsigned long long>(inst.matrix_bytes()));
    }
  }
  return 0;
}
