# gnuplot script for the Fig 8 series (per-matrix CSR-VI speedups).
#   gnuplot -persist plot_fig8.gp
set datafile separator ","
set style data histogram
set style histogram cluster gap 1
set style fill solid 0.8
set boxwidth 0.9
set xtics rotate by -45 font ",8"
set ylabel "speedup vs serial CSR"
set title "CSR-VI per-matrix speedups, ttu > 5 subset (Fig 8 equivalent)"
set key outside top
set grid ytics
plot "fig8_csr_vi_detail.csv" using 3:xtic(1) title "x1", \
     "" using 4 title "x2", \
     "" using 5 title "x4", \
     "" using 6 title "x8", \
     "" using 7 with points pt 5 ps 1 lc rgb "black" title "CSR x8"
